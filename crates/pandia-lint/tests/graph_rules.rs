//! Cross-file rule tests: the D3 taint graph (including the two-module
//! laundering case), attribution-driven H1/H2 hot-path enforcement, C1
//! guard liveness, V1 schema-tag policing, B1 stale-baseline detection
//! with `--prune-baseline`, and the v2 JSON report structure.

use pandia_lint::baseline::Baseline;
use pandia_lint::report::Rule;
use pandia_lint::rules::{check_source, FileScope, SCHEMA_REGISTRY_PATH};
use pandia_lint::{check_sources, CheckOptions, SourceSpec};

/// Scope of a result-producing crate: every rule on.
const RESULT: FileScope = FileScope {
    d1: true,
    d2: true,
    n1: true,
    p1: true,
    s1: true,
    s2: true,
    c1: true,
    v1: true,
    d3: true,
    hot: true,
};

fn spec(rel_path: &str, crate_name: &str, scope: FileScope, src: &str) -> SourceSpec {
    SourceSpec {
        rel_path: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        scope,
        src: src.to_string(),
    }
}

fn rules_of(report: &pandia_lint::report::Report, rule: Rule) -> Vec<(String, u32)> {
    report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| (f.file.clone(), f.line))
        .collect()
}

// ---------------------------------------------------------------- D3

/// A helper crate outside D2 scope that launders the wall clock through
/// two functions. The result crate never touches `Instant` directly.
const LAUNDERING_HELPER: &str = "
pub fn stamp() -> u64 { now_ms() }
fn now_ms() -> u64 { millis(std::time::Instant::now()) }
";

#[test]
fn d3_flags_taint_laundered_through_a_helper_crate() {
    let files = [
        spec(
            "crates/pandia-sim/src/lib.rs",
            "pandia-sim",
            RESULT,
            "fn predict() -> u64 { pandia_util::stamp() + 1 }\n",
        ),
        spec(
            "crates/pandia-util/src/lib.rs",
            "pandia-util",
            FileScope::default(),
            LAUNDERING_HELPER,
        ),
    ];
    let report = check_sources(&files, &Baseline::new(), &[]);
    let d3 = rules_of(&report, Rule::D3);
    assert_eq!(d3, [("crates/pandia-sim/src/lib.rs".to_string(), 1)], "{:?}", report.findings);
    let finding = report.findings.iter().find(|f| f.rule == Rule::D3).unwrap();
    assert!(
        finding.message.contains("now_ms") && finding.message.contains("stamp"),
        "the message must name both the boundary call and the source: {}",
        finding.message
    );
    // The helper itself is outside D2 scope: no direct D2 finding there.
    assert!(rules_of(&report, Rule::D2).is_empty());
}

#[test]
fn d3_exemption_with_reason_suppresses_the_boundary_call() {
    let files = [
        spec(
            "crates/pandia-sim/src/lib.rs",
            "pandia-sim",
            RESULT,
            "fn predict() -> u64 {\n\
             // lint: allow(D3): the stamp feeds a log line, never the result\n\
             pandia_util::stamp() + 1\n\
             }\n",
        ),
        spec(
            "crates/pandia-util/src/lib.rs",
            "pandia-util",
            FileScope::default(),
            LAUNDERING_HELPER,
        ),
    ];
    let report = check_sources(&files, &Baseline::new(), &[]);
    assert!(!report.has_findings(), "{:?}", report.findings);
}

#[test]
fn d3_never_taints_the_sanctioned_telemetry_crate() {
    // The same laundering shape through pandia-obs is fine: telemetry
    // reads wall clocks by design.
    let files = [
        spec(
            "crates/pandia-sim/src/lib.rs",
            "pandia-sim",
            RESULT,
            "fn predict() -> u64 { pandia_obs::stamp() + 1 }\n",
        ),
        spec(
            "crates/pandia-obs/src/clock.rs",
            "pandia-obs",
            FileScope { p1: true, s1: true, v1: true, ..FileScope::default() },
            LAUNDERING_HELPER,
        ),
    ];
    let report = check_sources(&files, &Baseline::new(), &[]);
    assert!(rules_of(&report, Rule::D3).is_empty(), "{:?}", report.findings);
}

#[test]
fn d3_qualifier_filter_keeps_vec_new_from_resolving_to_workspace_fns() {
    // The helper defines a tainted `fn new`; `Vec::new()` in the result
    // crate must not resolve to it (qualifier disagreement), even though
    // the file mentions the helper crate elsewhere.
    let files = [
        spec(
            "crates/pandia-sim/src/lib.rs",
            "pandia-sim",
            RESULT,
            "fn predict() -> Vec<u64> { pandia_util::touch(); Vec::new() }\n",
        ),
        spec(
            "crates/pandia-util/src/lib.rs",
            "pandia-util",
            FileScope::default(),
            "pub fn touch() {}\npub fn new() -> u64 { millis(std::time::Instant::now()) }\n",
        ),
    ];
    let report = check_sources(&files, &Baseline::new(), &[]);
    assert!(rules_of(&report, Rule::D3).is_empty(), "{:?}", report.findings);
}

// ------------------------------------------------------------- H1/H2

/// A hot root (opens the `sim/run` span), a hot callee with a panic site
/// and a per-iteration allocation, and a cold function that must stay
/// outside the hot set.
const HOT_SRC: &str = "
pub fn run(x: Option<u32>) -> u32 {
    let _s = pandia_obs::span(\"sim\", \"run\");
    step(x)
}
fn step(x: Option<u32>) -> u32 {
    let v = x.unwrap();
    for i in 0..10 {
        let s = format!(\"{i}\");
        consume(&s);
    }
    v
}
fn cold(x: Option<u32>) -> u32 { x.unwrap() }
";

fn hot_baseline(p1: u32, h1: u32) -> Baseline {
    let mut baseline = Baseline::new();
    baseline.p1.insert("crates/pandia-sim/src/lib.rs".to_string(), p1);
    if h1 > 0 {
        baseline.h1.insert("crates/pandia-sim/src/lib.rs".to_string(), h1);
    }
    baseline
}

#[test]
fn hot_set_closes_forward_from_span_roots_only() {
    let files = [spec("crates/pandia-sim/src/lib.rs", "pandia-sim", RESULT, HOT_SRC)];
    let report = check_sources(&files, &hot_baseline(2, 1), &["sim/run".to_string()]);
    assert!(
        report.hot_fns.iter().any(|f| f.ends_with("::run"))
            && report.hot_fns.iter().any(|f| f.ends_with("::step")),
        "run and step must be hot: {:?}",
        report.hot_fns
    );
    assert!(
        !report.hot_fns.iter().any(|f| f.ends_with("::cold")),
        "cold is never called from a hot root: {:?}",
        report.hot_fns
    );
    // Only step's unwrap is hot; cold's is not.
    assert_eq!(report.h1_counts.get("crates/pandia-sim/src/lib.rs"), Some(&1));
}

#[test]
fn h1_ratchets_against_the_h1_baseline_section() {
    let files = [spec("crates/pandia-sim/src/lib.rs", "pandia-sim", RESULT, HOT_SRC)];

    // No [h1] allowance: the hot panic site is a finding.
    let report = check_sources(&files, &hot_baseline(2, 0), &["sim/run".to_string()]);
    assert_eq!(rules_of(&report, Rule::H1).len(), 1, "{:?}", report.findings);

    // Allowance matches: clean (H2 aside).
    let report = check_sources(&files, &hot_baseline(2, 1), &["sim/run".to_string()]);
    assert!(rules_of(&report, Rule::H1).is_empty(), "{:?}", report.findings);

    // No hot phases: the hot rules are off entirely.
    let report = check_sources(&files, &hot_baseline(2, 0), &[]);
    assert!(rules_of(&report, Rule::H1).is_empty(), "{:?}", report.findings);
}

#[test]
fn h2_flags_allocation_in_hot_loop_and_honors_exemption() {
    let files = [spec("crates/pandia-sim/src/lib.rs", "pandia-sim", RESULT, HOT_SRC)];
    let report = check_sources(&files, &hot_baseline(2, 1), &["sim/run".to_string()]);
    let h2 = rules_of(&report, Rule::H2);
    assert_eq!(h2.len(), 1, "{:?}", report.findings);
    assert_eq!(h2[0].0, "crates/pandia-sim/src/lib.rs");

    let exempted = HOT_SRC.replace(
        "        let s = format!(\"{i}\");",
        "        // lint: allow(H2): the message is only built in the error branch\n\
         let s = format!(\"{i}\");",
    );
    let files = [spec("crates/pandia-sim/src/lib.rs", "pandia-sim", RESULT, &exempted)];
    let report = check_sources(&files, &hot_baseline(2, 1), &["sim/run".to_string()]);
    assert!(rules_of(&report, Rule::H2).is_empty(), "{:?}", report.findings);
}

// ---------------------------------------------------------------- C1

#[test]
fn c1_flags_guard_live_across_fanout() {
    let src = "
        fn f(state: &std::sync::Mutex<Vec<u32>>) {
            let guard = state.lock().unwrap();
            let out = parallel_map(&guard, |x| x + 1);
        }
    ";
    let report = check_source("test.rs", src, RESULT);
    let c1: Vec<_> = report.findings.iter().filter(|f| f.rule == Rule::C1).collect();
    assert_eq!(c1.len(), 1, "{:?}", report.findings);
    assert!(c1[0].message.contains("`guard`"), "{}", c1[0].message);
}

#[test]
fn c1_respects_drop_and_scope_close() {
    let dropped = "
        fn f(state: &std::sync::Mutex<Vec<u32>>) {
            let guard = state.lock().unwrap();
            let copy = guard.clone();
            drop(guard);
            let out = parallel_map(&copy, |x| x + 1);
        }
    ";
    let report = check_source("test.rs", dropped, RESULT);
    assert!(report.findings.iter().all(|f| f.rule != Rule::C1), "{:?}", report.findings);

    let scoped = "
        fn f(state: &std::sync::Mutex<Vec<u32>>) {
            let copy = { let guard = state.lock().unwrap(); guard.clone() };
            let out = parallel_map(&copy, |x| x + 1);
        }
    ";
    let report = check_source("test.rs", scoped, RESULT);
    assert!(report.findings.iter().all(|f| f.rule != Rule::C1), "{:?}", report.findings);
}

#[test]
fn c1_ignores_temporary_guard_chains() {
    // `.lock().unwrap().len()` consumes the guard inside the statement:
    // the binding holds a usize, not a guard.
    let src = "
        fn f(state: &std::sync::Mutex<Vec<u32>>) {
            let len = state.lock().unwrap().len();
            std::thread::scope(|s| { work(s, len); });
        }
    ";
    let report = check_source("test.rs", src, RESULT);
    assert!(report.findings.iter().all(|f| f.rule != Rule::C1), "{:?}", report.findings);
}

#[test]
fn c1_exemption_suppresses_at_the_fanout_site() {
    let src = "
        fn f(state: &std::sync::Mutex<Vec<u32>>) {
            let guard = state.lock().unwrap();
            // lint: allow(C1): workers never take this lock; read-only snapshot
            let out = parallel_map(&guard, |x| x + 1);
        }
    ";
    let report = check_source("test.rs", src, RESULT);
    assert!(report.findings.iter().all(|f| f.rule != Rule::C1), "{:?}", report.findings);
}

// ---------------------------------------------------------------- V1

#[test]
fn v1_flags_schema_tags_embedded_in_larger_literals() {
    let src = "fn f() -> String { String::from(\"{\\\"schema\\\":\\\"pandia-trace-v3\\\"}\") }\n";
    let report = check_source("crates/pandia-sim/src/out.rs", src, RESULT);
    let v1: Vec<_> = report.findings.iter().filter(|f| f.rule == Rule::V1).collect();
    assert_eq!(v1.len(), 1, "{:?}", report.findings);
    assert!(v1[0].message.contains("pandia-trace-v3"), "{}", v1[0].message);
}

#[test]
fn v1_ignores_unversioned_pandia_strings_and_the_registry() {
    // Crate names and paths are not schema tags.
    let clean = "fn f() { log(\"pandia-sim started\"); log(\"pandia-v2\"); }\n";
    let report = check_source("crates/pandia-sim/src/out.rs", clean, RESULT);
    assert!(report.findings.iter().all(|f| f.rule != Rule::V1), "{:?}", report.findings);

    // The registry module itself is the one sanctioned definition site.
    let registry = "pub const TRACE_SCHEMA: &str = \"pandia-trace-v3\";\n";
    let report = check_source(SCHEMA_REGISTRY_PATH, registry, RESULT);
    assert!(report.findings.iter().all(|f| f.rule != Rule::V1), "{:?}", report.findings);
}

#[test]
fn v1_exemption_with_reason_suppresses() {
    let src = "
        fn f() -> &'static str {
            // lint: allow(V1): golden fixture pins the historical v1 tag on purpose
            \"pandia-trace-v1\"
        }
    ";
    let report = check_source("crates/pandia-sim/src/out.rs", src, RESULT);
    assert!(report.findings.iter().all(|f| f.rule != Rule::V1), "{:?}", report.findings);
}

// ------------------------------------------------- B1 and pruning

#[test]
fn b1_flags_baseline_entries_for_vanished_files() {
    let files = [spec("crates/pandia-sim/src/lib.rs", "pandia-sim", RESULT, "fn f() {}\n")];
    let mut baseline = Baseline::new();
    baseline.p1.insert("crates/pandia-sim/src/gone.rs".to_string(), 3);
    baseline.h1.insert("crates/pandia-sim/src/gone.rs".to_string(), 1);
    let report = check_sources(&files, &baseline, &[]);
    let b1 = rules_of(&report, Rule::B1);
    // One finding per stale path, not per table.
    assert_eq!(b1, [("crates/pandia-sim/src/gone.rs".to_string(), 1)], "{:?}", report.findings);
}

#[test]
fn prune_baseline_drops_only_stale_entries() {
    use std::sync::atomic::{AtomicU32, Ordering};
    static UNIQUE: AtomicU32 = AtomicU32::new(0);
    let root = std::env::temp_dir().join(format!(
        "pandia-lint-prune-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    let src_dir = root.join("crates/pandia-sim/src");
    std::fs::create_dir_all(&src_dir).expect("create temp workspace");
    std::fs::write(src_dir.join("lib.rs"), "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n")
        .expect("write source");
    let baseline_path = root.join("lint-baseline.toml");
    std::fs::write(
        &baseline_path,
        "[p1]\n\
         \"crates/pandia-sim/src/gone.rs\" = 2\n\
         \"crates/pandia-sim/src/lib.rs\" = 1\n\
         [h1]\n\
         \"crates/pandia-sim/src/gone.rs\" = 1\n",
    )
    .expect("write baseline");

    let mut opts = CheckOptions::for_root(&root);
    opts.prune_baseline = true;
    let outcome = pandia_lint::run_check_with(&root, &opts).expect("prune run succeeds");

    // The stale path is the only finding; the live ratchet entry holds.
    assert!(
        outcome.report.findings.iter().all(|f| f.rule == Rule::B1),
        "{:?}",
        outcome.report.findings
    );
    let pruned = pandia_lint::baseline::parse(&outcome.updated_baseline.expect("prune rewrites"))
        .expect("pruned baseline parses");
    assert_eq!(pruned.p1.get("crates/pandia-sim/src/lib.rs"), Some(&1));
    assert!(!pruned.p1.contains_key("crates/pandia-sim/src/gone.rs"));
    assert!(pruned.h1.is_empty());
    std::fs::remove_dir_all(root).ok();
}

// ------------------------------------------------------------- JSON

#[test]
fn json_report_carries_the_v2_sections() {
    let files = [spec("crates/pandia-sim/src/lib.rs", "pandia-sim", RESULT, HOT_SRC)];
    let report = check_sources(&files, &hot_baseline(2, 1), &["sim/run".to_string()]);
    let json = report.render_json();
    for needle in [
        "{\"schema\":\"pandia-lint-v2\",\"findings\":[",
        "\"p1\":{",
        "\"h1\":{\"crates/pandia-sim/src/lib.rs\":1",
        "\"hot\":{\"phases\":[\"sim/run\"]",
        "\"functions\":[",
        "\"summary\":{\"files_checked\":1,",
        "\"h1_total\":1}",
    ] {
        assert!(json.contains(needle), "missing {needle} in {json}");
    }
}
