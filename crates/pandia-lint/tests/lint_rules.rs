//! Self-tests: lexer edge cases, seeded violations for every rule class,
//! exemption handling, and the baseline ratchet end-to-end.

use pandia_lint::lexer::{lex, TokKind};
use pandia_lint::report::Rule;
use pandia_lint::rules::{check_source, FileScope};

/// Scope with every per-file rule on, as in result-producing crates.
const ALL: FileScope = FileScope {
    d1: true,
    d2: true,
    n1: true,
    p1: true,
    s1: true,
    s2: true,
    c1: true,
    v1: true,
    d3: true,
    hot: true,
};

fn findings_of(src: &str, scope: FileScope) -> Vec<(Rule, u32)> {
    check_source("test.rs", src, scope).findings.iter().map(|f| (f.rule, f.line)).collect()
}

fn p1_count(src: &str) -> u32 {
    check_source("test.rs", src, ALL).p1_count
}

// ---------------------------------------------------------------- lexer

#[test]
fn lexer_strips_raw_strings() {
    // Rule tokens inside raw strings must not produce findings; the
    // closing quote of `r#"..."#` must be found past the inner `"`.
    let out = lex(r####"let x = r#"let m = HashMap::new(); m.iter() " still raw"#; x"####);
    let idents: Vec<&str> = out
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(idents, ["let", "x", "x"], "raw string contents leaked: {idents:?}");
}

#[test]
fn lexer_handles_nested_block_comments() {
    let out = lex("let a = 1; /* outer /* inner HashMap */ still comment */ let b = 2;");
    let idents: Vec<&str> = out
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(idents, ["let", "a", "let", "b"]);
}

#[test]
fn lexer_handles_string_escapes_and_comment_markers_in_strings() {
    // The escaped quote must not close the string; the `//` inside the
    // string must not start a comment that eats the rest of the line.
    let out = lex(r#"let s = "escaped \" quote // not a comment"; let t = 3;"#);
    let idents: Vec<&str> = out
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(idents, ["let", "s", "let", "t"]);
    assert!(out.lint_comments.is_empty(), "string contents parsed as a comment");
}

#[test]
fn lexer_distinguishes_chars_lifetimes_and_floats() {
    let out = lex("fn f<'a>(x: &'a str) { let c = '\\''; let d = 'x'; let y = 1.5e-3; let z = 10; let w = 2f64; }");
    let kinds: Vec<TokKind> = out.tokens.iter().map(|t| t.kind).collect();
    assert!(kinds.contains(&TokKind::Lifetime));
    assert_eq!(kinds.iter().filter(|&&k| k == TokKind::Char).count(), 2);
    let floats: Vec<&str> = out
        .tokens
        .iter()
        .filter(|t| t.kind == TokKind::Float)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(floats, ["1.5e-3", "2f64"]);
    assert!(out.tokens.iter().any(|t| t.kind == TokKind::Int && t.text == "10"));
}

#[test]
fn lexer_does_not_mistake_ranges_or_method_calls_for_floats() {
    let out = lex("for i in 0..10 { let x = 1.max(2); }");
    assert!(
        !out.tokens.iter().any(|t| t.kind == TokKind::Float),
        "`0..10` or `1.max(2)` mislexed as float"
    );
}

#[test]
fn lexer_surfaces_lint_directives() {
    let out = lex("let a = 1; // lint: sorted\n// lint: allow(N1): util is in [0,1]\n// plain comment\n");
    let texts: Vec<&str> = out.lint_comments.iter().map(|c| c.text.as_str()).collect();
    assert_eq!(texts, ["sorted", "allow(N1): util is in [0,1]"]);
    assert_eq!(out.lint_comments[0].line, 1);
    assert_eq!(out.lint_comments[1].line, 2);
}

#[test]
fn strip_test_code_removes_cfg_test_modules_and_test_fns() {
    let src = "
        fn prod() { x.unwrap(); }
        #[cfg(test)]
        mod tests {
            fn helper() { y.unwrap(); z.unwrap(); }
        }
        #[test]
        fn standalone() { w.unwrap(); }
        #[cfg(not(test))]
        fn also_prod() { v.unwrap(); }
    ";
    assert_eq!(p1_count(src), 2, "only prod() and also_prod() sites count");
}

// ---------------------------------------------------------------- D1

#[test]
fn d1_flags_hash_map_iteration() {
    let src = "
        use std::collections::HashMap;
        fn f() {
            let mut m: HashMap<u32, f64> = HashMap::new();
            for (k, v) in &m { body(k, v); }
            let best = m.iter().max();
            let ks = m.keys().collect::<Vec<_>>();
        }
    ";
    let found = findings_of(src, ALL);
    assert_eq!(
        found.iter().filter(|(r, _)| *r == Rule::D1).count(),
        3,
        "for-loop, .iter(), and .keys() should each fire: {found:?}"
    );
}

#[test]
fn d1_flags_hash_set_drain_but_not_membership() {
    let src = "
        fn f() {
            let mut seen = std::collections::HashSet::new();
            seen.insert(1);
            if seen.contains(&1) { g(); }
            let n = seen.len();
            for x in seen.drain() { h(x); }
        }
    ";
    let d1: Vec<_> = findings_of(src, ALL).into_iter().filter(|(r, _)| *r == Rule::D1).collect();
    assert_eq!(d1.len(), 1, "only drain() should fire: {d1:?}");
}

#[test]
fn d1_ignores_btree_map_and_untracked_bindings() {
    let src = "
        fn f() {
            let mut m = std::collections::BTreeMap::new();
            for (k, v) in &m { body(k, v); }
            let v = m.iter().count();
        }
    ";
    assert!(findings_of(src, ALL).is_empty(), "BTreeMap iteration is deterministic");
}

#[test]
fn d1_sorted_exemption_suppresses() {
    let src = "
        fn f() {
            let mut m = std::collections::HashMap::new();
            // lint: sorted
            let mut pairs: Vec<_> = m.iter().collect();
            pairs.sort();
        }
    ";
    assert!(findings_of(src, ALL).is_empty(), "`// lint: sorted` must exempt the next line");
}

#[test]
fn d1_allow_file_suppresses_whole_file() {
    let src = "
        // lint: allow-file(D1): this module sorts all iteration results before use
        fn f() {
            let mut m = std::collections::HashMap::new();
            for (k, v) in &m { body(k, v); }
            let v = m.values().sum::<f64>();
        }
    ";
    assert!(findings_of(src, ALL).is_empty());
}

// ---------------------------------------------------------------- D2

#[test]
fn d2_flags_clock_thread_and_env_reads() {
    let src = "
        fn f() {
            let t0 = std::time::Instant::now();
            let wall = std::time::SystemTime::now();
            let id = std::thread::current().id();
            let dir = std::env::var(\"PANDIA_RESULTS_DIR\");
        }
    ";
    let d2 = findings_of(src, ALL).into_iter().filter(|(r, _)| *r == Rule::D2).count();
    assert_eq!(d2, 4);
}

#[test]
fn d2_exemption_and_scope() {
    let exempt = "
        fn f() {
            // lint: allow(D2): coarse wall-clock only feeds a progress message
            let t0 = std::time::Instant::now();
        }
    ";
    assert!(findings_of(exempt, ALL).is_empty());
    // Out of scope (e.g. pandia-obs): no D2 findings at all.
    let scope = FileScope { p1: true, ..FileScope::default() };
    let src = "fn f() { let t0 = std::time::Instant::now(); }";
    assert!(findings_of(src, scope).is_empty());
}

// ---------------------------------------------------------------- N1

#[test]
fn n1_flags_nan_swallowing_comparator() {
    let src = "
        fn f(xs: &mut [f64]) {
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        }
    ";
    let found = findings_of(src, ALL);
    assert_eq!(found.iter().filter(|(r, _)| *r == Rule::N1).count(), 1, "{found:?}");
}

#[test]
fn n1_flags_float_literal_equality() {
    let src = "fn f(x: f64) -> bool { x == 0.0 || x != 1.5 }";
    let n1 = findings_of(src, ALL).into_iter().filter(|(r, _)| *r == Rule::N1).count();
    assert_eq!(n1, 2);
}

#[test]
fn n1_accepts_total_cmp_and_integer_equality() {
    let src = "
        fn f(xs: &mut [f64], n: usize) -> bool {
            xs.sort_by(|a, b| a.total_cmp(b));
            n == 0
        }
    ";
    assert!(findings_of(src, ALL).is_empty());
}

#[test]
fn n1_exemption_requires_reason() {
    let with_reason = "
        fn f(x: f64) -> bool {
            // lint: allow(N1): x is a segment count scaled by 1.0, never NaN
            x == 0.0
        }
    ";
    assert!(findings_of(with_reason, ALL).is_empty());

    let without_reason = "
        fn f(x: f64) -> bool {
            // lint: allow(N1)
            x == 0.0
        }
    ";
    let found = findings_of(without_reason, ALL);
    assert!(
        found.iter().any(|(r, _)| *r == Rule::Directive),
        "reasonless exemption must be rejected: {found:?}"
    );
    assert!(
        found.iter().any(|(r, _)| *r == Rule::N1),
        "rejected exemption must not suppress the finding: {found:?}"
    );
}

// ---------------------------------------------------------------- P1

#[test]
fn p1_counts_panic_sites() {
    let src = "
        fn f(x: Option<u32>) -> u32 {
            let a = x.unwrap();
            let b = x.expect(\"present\");
            if a > b { panic!(\"impossible\"); }
            match a { 0 => todo!(), 1 => unreachable!(), _ => a }
        }
    ";
    assert_eq!(p1_count(src), 5);
}

#[test]
fn p1_ignores_unwrap_or_family_and_strings() {
    let src = "
        fn f(x: Option<u32>) -> u32 {
            let msg = \"please unwrap() this\"; // and .expect( too
            x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()
        }
    ";
    assert_eq!(p1_count(src), 0);
}

// ---------------------------------------------------------------- S1

#[test]
fn s1_flags_unknown_span_layers_and_accepts_known_ones() {
    let src = "
        fn f() {
            let _a = pandia_obs::span(\"sim\", \"run\");
            let _b = pandia_obs::span(\"predictr\", \"predict\");
            let _c = pandia_obs::span(\"harness\", \"sweep\").arg(\"n\", 3u64);
        }
    ";
    let s1: Vec<_> = findings_of(src, ALL).into_iter().filter(|(r, _)| *r == Rule::S1).collect();
    assert_eq!(s1.len(), 1, "only the typoed layer should fire: {s1:?}");
}

#[test]
fn s1_ignores_definitions_and_non_literal_layers() {
    let src = "
        pub fn span(layer: &'static str, name: &str) -> Guard { make(layer, name) }
        fn g(layer: &'static str) {
            let _s = pandia_obs::span(layer, \"dynamic\");
        }
    ";
    assert!(findings_of(src, ALL).is_empty(), "no literal layer, nothing to check");
}

#[test]
fn s1_exemption_and_test_code() {
    let exempt = "
        fn f() {
            // lint: allow(S1): experimental layer, promoted to the registry when it sticks
            let _s = pandia_obs::span(\"scratch\", \"probe\");
        }
    ";
    assert!(findings_of(exempt, ALL).is_empty());

    let test_only = "
        #[cfg(test)]
        mod tests {
            fn t() { let _s = pandia_obs::span(\"t\", \"s0\"); }
        }
    ";
    assert!(findings_of(test_only, ALL).is_empty(), "test code is stripped before S1");
}

// ---------------------------------------------------------------- S2

#[test]
fn s2_flags_direct_recorder_writes() {
    let src = "
        fn f() {
            let recorder = pandia_obs::install();
            recorder.add(\"daemon.events\", 1);
            let _s = recorder.span(\"daemon\", \"apply\");
            recorder.counter(\"x\").add(1);
        }
    ";
    let s2: Vec<_> = findings_of(src, ALL).into_iter().filter(|(r, _)| *r == Rule::S2).collect();
    assert_eq!(s2.len(), 3, "add, span, and counter should each fire: {s2:?}");
}

#[test]
fn s2_tracks_destructured_global_bindings() {
    let src = "
        fn f() {
            let Some(recorder) = pandia_obs::global() else { return };
            recorder.record_span_at(event);
        }
    ";
    let s2 = findings_of(src, ALL).into_iter().filter(|(r, _)| *r == Rule::S2).count();
    assert_eq!(s2, 1);
}

#[test]
fn s2_allows_helpers_reads_and_untracked_bindings() {
    let src = "
        fn f(history: &History) {
            pandia_obs::count(\"daemon.events\", 1);
            let _s = pandia_obs::span(\"daemon\", \"apply\");
            let recorder = pandia_obs::global();
            let snapshot = recorder.map(|r| r.metrics_snapshot());
            let tape = History::new();
            tape.add(\"entry\", 1);
        }
    ";
    assert!(
        findings_of(src, ALL).iter().all(|(r, _)| *r != Rule::S2),
        "helpers, read-side calls, and non-recorder .add() must not fire"
    );
}

#[test]
fn s2_exemption_suppresses_the_bridge() {
    let src = "
        fn f() {
            let Some(recorder) = pandia_obs::global() else { return };
            // lint: allow(S2): sanctioned bridge with explicit timestamps
            recorder.record_span_at(event);
        }
    ";
    assert!(findings_of(src, ALL).is_empty());
}

// ------------------------------------------------------- directives

#[test]
fn unknown_directives_and_p1_exemptions_are_findings() {
    let unknown = "// lint: alow(D1): typo\nfn f() {}";
    assert!(findings_of(unknown, ALL).iter().any(|(r, _)| *r == Rule::Directive));

    let p1_exempt = "// lint: allow(P1): please\nfn f() {}";
    assert!(findings_of(p1_exempt, ALL).iter().any(|(r, _)| *r == Rule::Directive));

    let unknown_rule = "// lint: allow(Z9): what\nfn f() {}";
    assert!(findings_of(unknown_rule, ALL).iter().any(|(r, _)| *r == Rule::Directive));
}

// ------------------------------------------------- baseline ratchet

/// Builds a throwaway workspace with one result-crate source file and
/// runs the full `run_check` against an optional baseline.
fn run_in_temp_workspace(
    source: &str,
    baseline: Option<&str>,
    update: bool,
) -> (pandia_lint::CheckOutcome, std::path::PathBuf) {
    use std::sync::atomic::{AtomicU32, Ordering};
    static UNIQUE: AtomicU32 = AtomicU32::new(0);
    let root = std::env::temp_dir().join(format!(
        "pandia-lint-test-{}-{}",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::Relaxed)
    ));
    let src_dir = root.join("crates/pandia-sim/src");
    std::fs::create_dir_all(&src_dir).expect("create temp workspace");
    std::fs::write(src_dir.join("lib.rs"), source).expect("write source");
    let baseline_path = root.join("lint-baseline.toml");
    if let Some(contents) = baseline {
        std::fs::write(&baseline_path, contents).expect("write baseline");
    }
    let outcome =
        pandia_lint::run_check(&root, &baseline_path, update).expect("run_check succeeds");
    (outcome, root)
}

#[test]
fn ratchet_fails_above_baseline_and_passes_at_or_below() {
    let two_sites = "fn f(x: Option<u32>) { x.unwrap(); x.unwrap(); }\n";

    // No baseline: both sites are findings.
    let (outcome, root) = run_in_temp_workspace(two_sites, None, false);
    assert!(outcome.report.findings.iter().any(|f| f.rule == Rule::P1));
    std::fs::remove_dir_all(root).ok();

    // Baseline matches: clean.
    let (outcome, root) =
        run_in_temp_workspace(two_sites, Some("[p1]\n\"crates/pandia-sim/src/lib.rs\" = 2\n"), false);
    assert!(!outcome.report.has_findings(), "{:?}", outcome.report.findings);
    assert!(outcome.report.ratchet_slack.is_empty());
    std::fs::remove_dir_all(root).ok();

    // Baseline higher: clean, but slack is reported for the ratchet.
    let (outcome, root) =
        run_in_temp_workspace(two_sites, Some("[p1]\n\"crates/pandia-sim/src/lib.rs\" = 3\n"), false);
    assert!(!outcome.report.has_findings());
    assert_eq!(
        outcome.report.ratchet_slack,
        vec![("crates/pandia-sim/src/lib.rs".to_string(), 2, 3)]
    );
    std::fs::remove_dir_all(root).ok();

    // Baseline lower: the ratchet rejects the increase.
    let (outcome, root) =
        run_in_temp_workspace(two_sites, Some("[p1]\n\"crates/pandia-sim/src/lib.rs\" = 1\n"), false);
    assert!(outcome.report.findings.iter().any(|f| f.rule == Rule::P1));
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn update_baseline_writes_current_counts() {
    let src = "fn f(x: Option<u32>) { x.unwrap(); }\n";
    let (outcome, root) = run_in_temp_workspace(src, None, true);
    let new_baseline = outcome.updated_baseline.expect("update requested");
    let parsed = pandia_lint::baseline::parse(&new_baseline).expect("regenerated parses");
    assert_eq!(parsed.p1.get("crates/pandia-sim/src/lib.rs"), Some(&1));
    std::fs::remove_dir_all(root).ok();
}

#[test]
fn json_output_is_escaped_and_schema_tagged() {
    let src = "fn f() { let m = std::collections::HashMap::new(); let v = m.iter().count(); }\n";
    let report = check_source("dir/with \"quotes\".rs", src, ALL);
    let full = pandia_lint::report::Report {
        findings: report.findings,
        files_checked: 1,
        ..Default::default()
    };
    let json = full.render_json();
    assert!(json.starts_with("{\"schema\":\"pandia-lint-v2\""));
    assert!(json.contains("\\\"quotes\\\""), "path quotes must be escaped: {json}");
    assert!(json.contains("\"rule\":\"D1\""));
}

// ---------------------------------------------------------------- V1

#[test]
fn v1_flags_retyped_durability_schema_tags() {
    // The journal and checkpoint formats added for crash recovery are
    // exactly the kind of tag V1 exists for: a writer in pandia-daemon
    // and a reader in tooling must never disagree on the version. A
    // retyped literal — bare or embedded in a JSON fragment — is
    // flagged at the right line.
    let src = concat!(
        "fn write_header() -> String {\n",
        "    format!(\"{{\\\"schema\\\":\\\"pandia-journal-v1\\\"}}\")\n",
        "}\n",
        "const CKPT: &str = \"pandia-checkpoint-v1\";\n",
    );
    let findings = findings_of(src, ALL);
    assert_eq!(
        findings,
        vec![(Rule::V1, 2), (Rule::V1, 4)],
        "both durability tags must be flagged"
    );
    // The registry module itself is the one place allowed to spell the
    // tags out.
    let registry = check_source(pandia_lint::rules::SCHEMA_REGISTRY_PATH, src, ALL);
    assert!(
        registry.findings.iter().all(|f| f.rule != Rule::V1),
        "registry must be exempt: {:?}",
        registry.findings
    );
}

#[test]
fn v1_ignores_unversioned_pandia_strings() {
    // Prose mentioning the project, or hyphenated names without a
    // `-vN` suffix, are not schema tags.
    let src = concat!(
        "const A: &str = \"pandia-journal\";\n",
        "const B: &str = \"the pandia-daemon crate\";\n",
        "const C: &str = \"pandia-v\";\n",
    );
    let findings = findings_of(src, ALL);
    assert!(findings.iter().all(|(r, _)| *r != Rule::V1), "{findings:?}");
}
