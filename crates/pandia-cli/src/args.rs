//! Hand-rolled argument parsing for the `pandia` CLI.

use pandia_topology::CanonicalPlacement;

/// Usage text shown on parse errors and `pandiactl help`.
pub const USAGE: &str = "\
usage: pandiactl [--jobs N] [--no-cache] [--quiet] [--trace-out FILE]
                 [--metrics-out FILE] [--events-out FILE] <command> [args]

global options:
  --jobs N, -j N     worker threads for placement sweeps (default: all
                     hardware threads; results are identical for any N)
  --no-cache         disable prediction memoization
  --quiet            suppress stderr progress notes (timings, cache
                     stats, 'wrote ...' lines); results are unaffected
  --trace-out FILE   write a Chrome trace-event JSON (chrome://tracing,
                     Perfetto) of the run's spans when the command exits
  --metrics-out FILE write the metrics registry as JSONL on exit
  --events-out FILE  stream raw span events to a JSONL file live while
                     the command runs (tail -f-able; schema
                     pandia-events-v1)
  --faults F         inject simulator faults at intensity F in [0,1]
                     during workload profiling runs (transient failures,
                     counter dropout, interference bursts, noise regimes)
  --robust           profile with the robust measurement pipeline:
                     bounded retries, median/MAD outlier rejection, and
                     closed-form solver fallback

commands:
  machines                         list machine presets
  workloads                        list registered workloads
  describe <machine> [-o FILE]     measure a machine description
  profile <machine> <workload> [-o FILE]
                                   run the six profiling runs
  predict <machine> <workload> -p PLACEMENT
                                   predict one placement, e.g. -p \"2,1|1\"
  best <machine> <workload> [--tolerance F]
                                   best + resource-saving placement
  plan <machine> <workload> (--time T | --speedup S | --fraction F)
                                   smallest placement meeting a target
  explore <machine> <workload>     measured-vs-predicted curve (simulated)
  coschedule <machine> <w1> <w2>   joint placement for two workloads
  submit <log> <job> <class> [-n MACHINES]
                                   append a submission to a daemon event
                                   log and show where it lands
  status <log> [-n MACHINES] [--high-water N]
                                   replay a daemon event log and show
                                   job/queue/fleet status; exits 0 when
                                   healthy, 1 when degraded (overload
                                   mode; --high-water bounds the replay
                                   queue), 2 when the log is unreachable
  drain <log> [-n MACHINES]        complete every live job in the log
                                   (appends the completion events)
  help                             show this message

daemon logs use the pandia-eventlog-v1 JSONL schema (see pandiad for
replay/generation against larger fleets and real machine presets).

PLACEMENT syntax: per-socket groups separated by '|', per-core thread
counts separated by ','. \"2,1|1\" = one core with 2 threads and one with
1 on the first socket, one single-thread core on the second.";

/// A capacity-planning target as parsed from the command line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanTarget {
    /// `--time T`: finish within T seconds.
    Time(f64),
    /// `--speedup S`: achieve at least S x over single-thread.
    Speedup(f64),
    /// `--fraction F`: stay within F of peak performance.
    Fraction(f64),
}

/// Global execution flags, shared by every command.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecFlags {
    /// Worker threads for placement sweeps (`None` = all hardware
    /// threads).
    pub jobs: Option<usize>,
    /// Whether prediction memoization is enabled.
    pub cache: bool,
    /// Whether stderr progress notes are suppressed (`--quiet`).
    pub quiet: bool,
    /// Chrome trace-event JSON output path (`--trace-out FILE`).
    pub trace_out: Option<String>,
    /// Metrics-registry JSONL output path (`--metrics-out FILE`).
    pub metrics_out: Option<String>,
    /// Live span-event JSONL stream path (`--events-out FILE`).
    pub events_out: Option<String>,
    /// Fault-injection intensity for profiling runs (`--faults F`,
    /// 0 = none).
    pub faults: f64,
    /// Whether profiling uses the robust measurement pipeline
    /// (`--robust`).
    pub robust: bool,
}

impl Default for ExecFlags {
    fn default() -> Self {
        Self {
            jobs: None,
            cache: true,
            quiet: false,
            trace_out: None,
            metrics_out: None,
            events_out: None,
            faults: 0.0,
            robust: false,
        }
    }
}

/// Strips the global `--jobs N` / `-j N` / `--no-cache` / `--quiet` /
/// `--trace-out FILE` / `--metrics-out FILE` flags out of argv before
/// command parsing (the command parsers treat every `-flag` as taking a
/// value, so global flags must come out first).
pub fn extract_exec_flags(argv: &[String]) -> Result<(Vec<String>, ExecFlags), String> {
    let mut flags = ExecFlags::default();
    let mut rest = Vec::with_capacity(argv.len());
    let mut i = 0;
    let value_of = |argv: &[String], i: usize| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("option {} requires a value", argv[i]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--jobs" | "-j" => {
                let value = value_of(argv, i)?;
                let jobs = value
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("invalid worker count '{value}' (expected >= 1)"))?;
                flags.jobs = Some(jobs);
                i += 2;
            }
            "--no-cache" => {
                flags.cache = false;
                i += 1;
            }
            "--quiet" => {
                flags.quiet = true;
                i += 1;
            }
            "--trace-out" => {
                flags.trace_out = Some(value_of(argv, i)?);
                i += 2;
            }
            "--metrics-out" => {
                flags.metrics_out = Some(value_of(argv, i)?);
                i += 2;
            }
            "--events-out" => {
                flags.events_out = Some(value_of(argv, i)?);
                i += 2;
            }
            "--faults" => {
                let value = value_of(argv, i)?;
                let intensity = value
                    .parse::<f64>()
                    .ok()
                    .filter(|f| (0.0..=1.0).contains(f))
                    .ok_or_else(|| {
                        format!("invalid fault intensity '{value}' (expected 0..1)")
                    })?;
                flags.faults = intensity;
                i += 2;
            }
            "--robust" => {
                flags.robust = true;
                i += 1;
            }
            _ => {
                rest.push(argv[i].clone());
                i += 1;
            }
        }
    }
    Ok((rest, flags))
}

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `pandiactl machines`
    Machines,
    /// `pandiactl workloads`
    Workloads,
    /// `pandiactl describe <machine> [-o FILE]`
    Describe {
        /// Machine preset name.
        machine: String,
        /// Optional JSON output path.
        output: Option<String>,
    },
    /// `pandiactl profile <machine> <workload> [-o FILE]`
    Profile {
        /// Machine preset name.
        machine: String,
        /// Workload name.
        workload: String,
        /// Optional JSON output path.
        output: Option<String>,
    },
    /// `pandiactl predict <machine> <workload> -p PLACEMENT`
    Predict {
        /// Machine preset name.
        machine: String,
        /// Workload name.
        workload: String,
        /// The placement to predict.
        placement: CanonicalPlacement,
    },
    /// `pandiactl best <machine> <workload> [--tolerance F]`
    Best {
        /// Machine preset name.
        machine: String,
        /// Workload name.
        workload: String,
        /// Resource-saving tolerance (fraction of peak).
        tolerance: f64,
    },
    /// `pandiactl plan <machine> <workload> --time T`
    Plan {
        /// Machine preset name.
        machine: String,
        /// Workload name.
        workload: String,
        /// The performance target.
        target: PlanTarget,
    },
    /// `pandiactl explore <machine> <workload>`
    Explore {
        /// Machine preset name.
        machine: String,
        /// Workload name.
        workload: String,
    },
    /// `pandiactl coschedule <machine> <w1> <w2>`
    CoSchedule {
        /// Machine preset name.
        machine: String,
        /// First workload name.
        first: String,
        /// Second workload name.
        second: String,
    },
    /// `pandiactl submit <log> <job> <class> [-n MACHINES]`
    Submit {
        /// Event log path (created if missing).
        log: String,
        /// Job name.
        job: String,
        /// Workload class.
        class: String,
        /// Synthetic fleet size used to replay the log.
        machines: usize,
    },
    /// `pandiactl status <log> [-n MACHINES] [--high-water N]`
    ///
    /// Exits 0 when the replayed daemon is healthy, 1 when it is in
    /// degraded (overload) mode, and 2 when the log is unreachable —
    /// missing, unreadable, or corrupt.
    Status {
        /// Event log path.
        log: String,
        /// Synthetic fleet size used to replay the log.
        machines: usize,
        /// Optional queue high-water mark for the replay: engages
        /// overload shedding/degraded mode so health is judged under a
        /// bounded policy (`None` = unbounded, never degraded).
        high_water: Option<usize>,
    },
    /// `pandiactl drain <log> [-n MACHINES]`
    Drain {
        /// Event log path.
        log: String,
        /// Synthetic fleet size used to replay the log.
        machines: usize,
    },
    /// `pandiactl help`
    Help,
}

/// Parses the `-n MACHINES` option shared by the daemon subcommands.
fn machines_option(options: &[(&String, &String)]) -> Result<usize, String> {
    match option_value(options, "-n")? {
        Some(v) => v
            .parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("invalid machine count '{v}' (expected >= 1)")),
        None => Ok(4),
    }
}

/// Parses argv (without the program name).
pub fn parse(argv: &[String]) -> Result<Command, String> {
    let mut it = argv.iter();
    let command = it.next().ok_or_else(|| "missing command".to_string())?;
    let rest: Vec<&String> = it.collect();
    match command.as_str() {
        "machines" => expect_empty(&rest).map(|()| Command::Machines),
        "workloads" => expect_empty(&rest).map(|()| Command::Workloads),
        "help" | "--help" | "-h" => Ok(Command::Help),
        "describe" => {
            let (positional, options) = split_options(&rest)?;
            let [machine] = positional_exactly::<1>(&positional, "describe <machine>")?;
            Ok(Command::Describe { machine, output: option_value(&options, "-o")? })
        }
        "profile" => {
            let (positional, options) = split_options(&rest)?;
            let [machine, workload] =
                positional_exactly::<2>(&positional, "profile <machine> <workload>")?;
            Ok(Command::Profile { machine, workload, output: option_value(&options, "-o")? })
        }
        "predict" => {
            let (positional, options) = split_options(&rest)?;
            let [machine, workload] =
                positional_exactly::<2>(&positional, "predict <machine> <workload>")?;
            let spec = option_value(&options, "-p")?
                .or(option_value(&options, "--placement")?)
                .ok_or_else(|| "predict requires -p PLACEMENT".to_string())?;
            Ok(Command::Predict { machine, workload, placement: parse_placement(&spec)? })
        }
        "best" => {
            let (positional, options) = split_options(&rest)?;
            let [machine, workload] =
                positional_exactly::<2>(&positional, "best <machine> <workload>")?;
            let tolerance = match option_value(&options, "--tolerance")? {
                Some(v) => v
                    .parse::<f64>()
                    .ok()
                    .filter(|t| (0.0..=1.0).contains(t))
                    .ok_or_else(|| format!("invalid tolerance '{v}' (expected 0..1)"))?,
                None => 0.95,
            };
            Ok(Command::Best { machine, workload, tolerance })
        }
        "plan" => {
            let (positional, options) = split_options(&rest)?;
            let [machine, workload] =
                positional_exactly::<2>(&positional, "plan <machine> <workload>")?;
            let parse_f = |v: &str, what: &str| {
                v.parse::<f64>().map_err(|_| format!("invalid {what} '{v}'"))
            };
            let target = if let Some(t) = option_value(&options, "--time")? {
                PlanTarget::Time(parse_f(&t, "time")?)
            } else if let Some(s) = option_value(&options, "--speedup")? {
                PlanTarget::Speedup(parse_f(&s, "speedup")?)
            } else if let Some(f) = option_value(&options, "--fraction")? {
                PlanTarget::Fraction(parse_f(&f, "fraction")?)
            } else {
                return Err("plan requires --time, --speedup or --fraction".to_string());
            };
            Ok(Command::Plan { machine, workload, target })
        }
        "explore" => {
            let (positional, _) = split_options(&rest)?;
            let [machine, workload] =
                positional_exactly::<2>(&positional, "explore <machine> <workload>")?;
            Ok(Command::Explore { machine, workload })
        }
        "coschedule" => {
            let (positional, _) = split_options(&rest)?;
            let [machine, first, second] =
                positional_exactly::<3>(&positional, "coschedule <machine> <w1> <w2>")?;
            Ok(Command::CoSchedule { machine, first, second })
        }
        "submit" => {
            let (positional, options) = split_options(&rest)?;
            let [log, job, class] =
                positional_exactly::<3>(&positional, "submit <log> <job> <class>")?;
            Ok(Command::Submit { log, job, class, machines: machines_option(&options)? })
        }
        "status" => {
            let (positional, options) = split_options(&rest)?;
            let [log] = positional_exactly::<1>(&positional, "status <log>")?;
            let high_water = match option_value(&options, "--high-water")? {
                Some(v) => Some(
                    v.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("invalid high-water mark '{v}' (expected >= 1)"))?,
                ),
                None => None,
            };
            Ok(Command::Status { log, machines: machines_option(&options)?, high_water })
        }
        "drain" => {
            let (positional, options) = split_options(&rest)?;
            let [log] = positional_exactly::<1>(&positional, "drain <log>")?;
            Ok(Command::Drain { log, machines: machines_option(&options)? })
        }
        other => Err(format!("unknown command '{other}'")),
    }
}

/// Parses the `"2,1|1"` placement syntax.
pub fn parse_placement(spec: &str) -> Result<CanonicalPlacement, String> {
    let mut sockets = Vec::new();
    for socket_spec in spec.split('|') {
        let socket_spec = socket_spec.trim();
        if socket_spec.is_empty() {
            sockets.push(Vec::new());
            continue;
        }
        let mut occ = Vec::new();
        for part in socket_spec.split(',') {
            let n: u8 = part
                .trim()
                .parse()
                .map_err(|_| format!("invalid per-core thread count '{part}'"))?;
            occ.push(n);
        }
        sockets.push(occ);
    }
    let placement = CanonicalPlacement::new(sockets);
    if placement.total_threads() == 0 {
        return Err(format!("placement '{spec}' contains no threads"));
    }
    Ok(placement)
}

fn expect_empty(rest: &[&String]) -> Result<(), String> {
    if rest.is_empty() {
        Ok(())
    } else {
        Err(format!("unexpected argument '{}'", rest[0]))
    }
}

/// Parsed `-flag value` pairs.
type Options<'a> = Vec<(&'a String, &'a String)>;

/// Splits arguments into positional values and `-flag value` pairs.
fn split_options<'a>(
    rest: &[&'a String],
) -> Result<(Vec<&'a String>, Options<'a>), String> {
    let mut positional = Vec::new();
    let mut options = Vec::new();
    let mut i = 0;
    while i < rest.len() {
        if rest[i].starts_with('-') {
            let value = rest
                .get(i + 1)
                .ok_or_else(|| format!("option {} requires a value", rest[i]))?;
            options.push((rest[i], *value));
            i += 2;
        } else {
            positional.push(rest[i]);
            i += 1;
        }
    }
    Ok((positional, options))
}

fn option_value(options: &[(&String, &String)], flag: &str) -> Result<Option<String>, String> {
    Ok(options.iter().find(|(f, _)| f.as_str() == flag).map(|(_, v)| (*v).clone()))
}

fn positional_exactly<const N: usize>(
    positional: &[&String],
    usage: &str,
) -> Result<[String; N], String> {
    if positional.len() != N {
        return Err(format!("expected: pandiactl {usage}"));
    }
    let mut out = Vec::with_capacity(N);
    for p in positional {
        out.push((*p).clone());
    }
    Ok(out.try_into().expect("length checked"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(parse(&argv("machines")).unwrap(), Command::Machines);
        assert_eq!(parse(&argv("workloads")).unwrap(), Command::Workloads);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
    }

    #[test]
    fn parses_describe_with_output() {
        let cmd = parse(&argv("describe x5-2 -o md.json")).unwrap();
        assert_eq!(
            cmd,
            Command::Describe { machine: "x5-2".into(), output: Some("md.json".into()) }
        );
    }

    #[test]
    fn parses_predict_with_placement() {
        let cmd = parse(&argv("predict x3-2 CG -p 2,1|1")).unwrap();
        match cmd {
            Command::Predict { machine, workload, placement } => {
                assert_eq!(machine, "x3-2");
                assert_eq!(workload, "CG");
                assert_eq!(placement.total_threads(), 4);
                assert_eq!(placement.sockets_used(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_best_with_default_tolerance() {
        match parse(&argv("best x4-2 Swim")).unwrap() {
            Command::Best { tolerance, .. } => assert_eq!(tolerance, 0.95),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("best x4-2 Swim --tolerance 0.8")).unwrap() {
            Command::Best { tolerance, .. } => assert_eq!(tolerance, 0.8),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("best x4-2 Swim --tolerance 1.8")).is_err());
    }

    #[test]
    fn placement_syntax_round_trips() {
        let p = parse_placement("2,2,1|1").unwrap();
        assert_eq!(p.total_threads(), 6);
        assert_eq!(p.cores_used(), 4);
        assert!(parse_placement("").is_err());
        assert!(parse_placement("x|1").is_err());
        // Normalization sorts within and across sockets.
        assert_eq!(parse_placement("1,2|2").unwrap(), parse_placement("2|2,1").unwrap());
    }

    #[test]
    fn parses_plan_targets() {
        match parse(&argv("plan x3-2 CG --time 8.5")).unwrap() {
            Command::Plan { target, .. } => assert_eq!(target, PlanTarget::Time(8.5)),
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("plan x3-2 CG --speedup 4")).unwrap() {
            Command::Plan { target, .. } => assert_eq!(target, PlanTarget::Speedup(4.0)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("plan x3-2 CG")).is_err(), "target required");
        assert!(parse(&argv("plan x3-2 CG --time abc")).is_err());
    }

    #[test]
    fn extracts_global_exec_flags_anywhere_in_argv() {
        let (rest, flags) = extract_exec_flags(&argv("--jobs 4 best x4-2 Swim")).unwrap();
        assert_eq!(flags, ExecFlags { jobs: Some(4), ..ExecFlags::default() });
        assert_eq!(parse(&rest).unwrap(), parse(&argv("best x4-2 Swim")).unwrap());

        let (rest, flags) =
            extract_exec_flags(&argv("plan x3-2 CG --time 8.5 -j 2 --no-cache")).unwrap();
        assert_eq!(flags, ExecFlags { jobs: Some(2), cache: false, ..ExecFlags::default() });
        assert!(matches!(parse(&rest).unwrap(), Command::Plan { .. }));

        let (_, flags) = extract_exec_flags(&argv("machines")).unwrap();
        assert_eq!(flags, ExecFlags::default());

        assert!(extract_exec_flags(&argv("best x4-2 Swim --jobs")).is_err());
        assert!(extract_exec_flags(&argv("--jobs zero machines")).is_err());
        assert!(extract_exec_flags(&argv("--jobs 0 machines")).is_err());
    }

    #[test]
    fn extracts_telemetry_and_quiet_flags() {
        let (rest, flags) = extract_exec_flags(&argv(
            "--quiet --trace-out trace.json best x4-2 Swim --metrics-out m.jsonl",
        ))
        .unwrap();
        assert_eq!(
            flags,
            ExecFlags {
                quiet: true,
                trace_out: Some("trace.json".into()),
                metrics_out: Some("m.jsonl".into()),
                ..ExecFlags::default()
            }
        );
        assert_eq!(parse(&rest).unwrap(), parse(&argv("best x4-2 Swim")).unwrap());

        // Values are required.
        assert!(extract_exec_flags(&argv("machines --trace-out")).is_err());
        assert!(extract_exec_flags(&argv("machines --metrics-out")).is_err());
    }

    #[test]
    fn extracts_fault_and_robustness_flags() {
        let (rest, flags) =
            extract_exec_flags(&argv("--faults 0.4 --robust profile x3-2 CG")).unwrap();
        assert_eq!(flags.faults, 0.4);
        assert!(flags.robust);
        assert!(matches!(parse(&rest).unwrap(), Command::Profile { .. }));

        let (_, flags) = extract_exec_flags(&argv("machines")).unwrap();
        assert_eq!(flags.faults, 0.0);
        assert!(!flags.robust);

        assert!(extract_exec_flags(&argv("--faults 1.5 machines")).is_err());
        assert!(extract_exec_flags(&argv("--faults nope machines")).is_err());
        assert!(extract_exec_flags(&argv("machines --faults")).is_err());
    }

    #[test]
    fn extracts_events_out_flag() {
        let (rest, flags) =
            extract_exec_flags(&argv("--events-out ev.jsonl status d.jsonl")).unwrap();
        assert_eq!(flags.events_out, Some("ev.jsonl".into()));
        assert!(matches!(parse(&rest).unwrap(), Command::Status { .. }));
        assert!(extract_exec_flags(&argv("machines --events-out")).is_err());
    }

    #[test]
    fn parses_daemon_subcommands() {
        assert_eq!(
            parse(&argv("submit d.jsonl j0 EP")).unwrap(),
            Command::Submit {
                log: "d.jsonl".into(),
                job: "j0".into(),
                class: "EP".into(),
                machines: 4,
            }
        );
        assert_eq!(
            parse(&argv("status d.jsonl -n 2")).unwrap(),
            Command::Status { log: "d.jsonl".into(), machines: 2, high_water: None }
        );
        assert_eq!(
            parse(&argv("status d.jsonl --high-water 8")).unwrap(),
            Command::Status { log: "d.jsonl".into(), machines: 4, high_water: Some(8) }
        );
        assert!(parse(&argv("status d.jsonl --high-water 0")).is_err());
        assert_eq!(
            parse(&argv("drain d.jsonl")).unwrap(),
            Command::Drain { log: "d.jsonl".into(), machines: 4 }
        );
        assert!(parse(&argv("submit d.jsonl j0")).is_err(), "class required");
        assert!(parse(&argv("status")).is_err());
        assert!(parse(&argv("status d.jsonl -n 0")).is_err());
    }

    #[test]
    fn missing_and_unknown_arguments_error() {
        assert!(parse(&[]).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("describe")).is_err());
        assert!(parse(&argv("predict x3-2 CG")).is_err(), "missing -p");
        assert!(parse(&argv("machines extra")).is_err());
        assert!(parse(&argv("describe x5-2 -o")).is_err(), "dangling option");
    }
}
