//! Command implementations for the `pandia` CLI.

use std::process::ExitCode;
use std::time::Instant;

use pandia_core::{
    describe_machine, predict, CoScheduler, ExecContext, MachineDescription, Objective,
    PandiaError, PredictorConfig, ProfileConfig, Recommendation, RobustnessPolicy,
    WorkloadDescription, WorkloadProfiler,
};
use pandia_harness::{experiments::curves, metrics, report, MachineContext};
use pandia_sim::{FaultPlan, SimConfig, SimMachine};
use pandia_topology::{HasShape, MachineSpec, PlacementEnumerator};

use crate::args::{Command, PlanTarget, USAGE};

/// How the CLI profiles workloads: fault injection on the simulated
/// platform and the measurement-pipeline policy (`--faults`/`--robust`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileOpts {
    /// Fault-injection intensity in [0, 1] (0 = clean machine).
    pub faults: f64,
    /// Whether to profile with [`RobustnessPolicy::robust`].
    pub robust: bool,
}

impl ProfileOpts {
    fn policy(&self) -> RobustnessPolicy {
        if self.robust {
            RobustnessPolicy::robust()
        } else {
            RobustnessPolicy::naive()
        }
    }
}

/// Records a sweep's wall time and cache statistics into the telemetry
/// registry, and prints them to stderr unless `quiet`.
fn report_sweep(exec: &ExecContext, stage: &str, candidates: usize, start: Instant, quiet: bool) {
    let wall = start.elapsed().as_secs_f64();
    let stats = exec.cache_stats();
    pandia_obs::observe("cli.sweep_wall_ms", wall * 1e3);
    pandia_obs::gauge("exec.jobs", exec.jobs() as f64);
    if !quiet {
        eprintln!(
            "{stage}: {candidates} candidates in {wall:.3}s (jobs={}; cache {} hits / {} misses, {:.1}% hit rate)",
            exec.jobs(),
            stats.hits,
            stats.misses,
            100.0 * stats.hit_rate()
        );
    }
}

/// Prints a "wrote FILE" stderr note unless `quiet`.
fn note_wrote(path: &str, quiet: bool) {
    if !quiet {
        eprintln!("wrote {path}");
    }
}

/// Executes a parsed command under an execution context.
///
/// `quiet` silences the stderr progress notes (sweep timings, cache
/// stats, "wrote ..." lines); stdout results are unaffected.
///
/// Returns the process exit code. Every command exits 0 on success;
/// `status` additionally encodes daemon health (see [`Command::Status`]).
pub fn run(
    command: Command,
    exec: &ExecContext,
    quiet: bool,
    opts: ProfileOpts,
) -> Result<ExitCode, Box<dyn std::error::Error>> {
    let _span = pandia_obs::span("cli", "run").arg("command", command_name(&command));
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Command::Machines => {
            println!("{:<22} {:>8} {:>12} {:>10} {:>9} {:>6}", "machine", "sockets", "cores/socket", "threads", "adaptive", "AVX");
            for spec in MachineSpec::evaluation_machines() {
                println!(
                    "{:<22} {:>8} {:>12} {:>10} {:>9} {:>6}",
                    spec.name,
                    spec.sockets,
                    spec.cores_per_socket,
                    spec.total_contexts(),
                    if spec.adaptive_llc { "yes" } else { "no" },
                    if spec.has_avx { "yes" } else { "no" },
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Workloads => {
            println!("{:<11} {:<10} {:<12} description", "workload", "suite", "set");
            for w in pandia_workloads::all_workloads() {
                println!(
                    "{:<11} {:<10} {:<12} {}",
                    w.name,
                    format!("{:?}", w.suite),
                    format!("{:?}", w.set),
                    w.description
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Describe { machine, output } => {
            let (_, description) = machine_context(&machine, opts)?;
            print_description(&description);
            if let Some(path) = output {
                std::fs::write(&path, description.to_json()?)?;
                note_wrote(&path, quiet);
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Profile { machine, workload, output } => {
            let (mut platform, description) = machine_context(&machine, opts)?;
            let entry = lookup_workload(&workload)?;
            let profiler = WorkloadProfiler::with_config(&description, profile_config(opts));
            let profile = profiler.profile(&mut platform, &entry.behavior, entry.name)?;
            println!("workload {} on {}", entry.name, description.machine);
            for run in &profile.runs {
                println!("  run {}: {:<42} r = {:.4}", run.run, run.label, run.relative);
            }
            let d = &profile.description;
            println!(
                "  t1 = {:.2}s  p = {:.4}  os = {:.5}  l = {:.2}  b = {:.3}",
                d.t1, d.parallel_fraction, d.inter_socket_overhead, d.load_balance, d.burstiness
            );
            println!(
                "  demands: instr {:.2}, L1 {:.1}, L2 {:.1}, L3 {:.1}, DRAM {:?}",
                d.demand.instr, d.demand.l1, d.demand.l2, d.demand.l3, d.demand.dram
            );
            let audit = &profile.audit;
            if !audit.is_clean() {
                println!(
                    "  audit: {} attempts, {} retries, {} lost repeats, {} degenerate, \
                     {} outliers rejected, {} solver fallbacks",
                    audit.attempts,
                    audit.retries,
                    audit.lost_repeats,
                    audit.degenerate_repeats,
                    audit.outliers_rejected,
                    audit.fallbacks
                );
            }
            if let Some(path) = output {
                std::fs::write(&path, d.to_json()?)?;
                note_wrote(&path, quiet);
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Predict { machine, workload, placement } => {
            let (mut platform, description) = machine_context(&machine, opts)?;
            let wd = profile_on(&mut platform, &description, &workload, opts)?;
            let concrete = placement.instantiate(&description.shape())?;
            let prediction =
                predict(&description, &wd, &concrete, &PredictorConfig::default())?;
            println!(
                "{} on {} at {placement}: predicted speedup {:.2} (Amdahl bound {:.2}), time {:.2}s",
                workload,
                description.machine,
                prediction.speedup,
                prediction.amdahl_speedup,
                prediction.predicted_time
            );
            let bottlenecks: std::collections::BTreeSet<String> = prediction
                .threads
                .iter()
                .filter_map(|t| t.bottleneck.map(|b| b.label()))
                .collect();
            if bottlenecks.is_empty() {
                println!("no resource is oversubscribed");
            } else {
                println!("bottlenecks: {}", bottlenecks.into_iter().collect::<Vec<_>>().join(", "));
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Best { machine, workload, tolerance } => {
            let (mut platform, description) = machine_context(&machine, opts)?;
            let wd = profile_on(&mut platform, &description, &workload, opts)?;
            let candidates = PlacementEnumerator::new(&description).all();
            let start = Instant::now();
            let rec = Recommendation::analyze_with(
                exec,
                &description,
                &wd,
                &candidates,
                tolerance,
                &PredictorConfig::default(),
            )?;
            report_sweep(exec, "placement sweep", candidates.len(), start, quiet);
            println!(
                "best predicted: {} ({} threads, speedup {:.2})",
                rec.best.placement, rec.best.n_threads, rec.best.speedup
            );
            println!(
                "use multiple sockets: {}; use SMT: {}",
                if rec.use_multiple_sockets { "yes" } else { "no" },
                if rec.use_smt { "yes" } else { "no" },
            );
            match rec.resource_saving {
                Some(saving) => println!(
                    "within {:.0}% of peak with {} threads on {} cores: {}",
                    100.0 * tolerance,
                    saving.n_threads,
                    saving.placement.cores_used(),
                    saving.placement
                ),
                None => println!("no smaller placement stays within the tolerance"),
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Plan { machine, workload, target } => {
            let (mut platform, description) = machine_context(&machine, opts)?;
            let wd = profile_on(&mut platform, &description, &workload, opts)?;
            let candidates = PlacementEnumerator::new(&description).all();
            let target = match target {
                PlanTarget::Time(t) => pandia_core::Target::MaxTime(t),
                PlanTarget::Speedup(s) => pandia_core::Target::MinSpeedup(s),
                PlanTarget::Fraction(f) => pandia_core::Target::FractionOfPeak(f),
            };
            let start = Instant::now();
            let plan = pandia_core::plan_with(
                exec,
                &description,
                &wd,
                &candidates,
                target,
                &PredictorConfig::default(),
            )?;
            report_sweep(exec, "planning sweep", candidates.len(), start, quiet);
            println!(
                "best achievable: {} ({} threads, {:.2}s predicted)",
                plan.best.placement, plan.best.n_threads, plan.best.predicted_time
            );
            match plan.placement {
                Some(p) => println!(
                    "target met by {} ({} threads on {} cores, {:.2}s predicted, {:.2}x headroom)",
                    p.placement,
                    p.n_threads,
                    p.placement.cores_used(),
                    p.predicted_time,
                    plan.headroom.unwrap_or(1.0)
                ),
                None => println!("target is NOT achievable on this machine"),
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Explore { machine, workload } => {
            let ctx = MachineContext::by_name(&machine)?;
            let entry = lookup_workload(&workload)?;
            let placements = ctx.enumerator().sampled(&ctx.spec, 8);
            let start = Instant::now();
            let curve = curves::workload_curve_with(exec, &ctx, &entry, &placements)?;
            report_sweep(exec, "explore sweep", placements.len(), start, quiet);
            println!("{}", report::ascii_curve(&curve, 100, 20));
            let stats = metrics::error_stats(&curve);
            println!(
                "error: mean {:.2}%, median {:.2}%; best-placement gap {:.2}%",
                stats.mean_error_pct,
                stats.median_error_pct,
                metrics::best_placement_gap(&curve)
            );
            Ok(ExitCode::SUCCESS)
        }
        Command::CoSchedule { machine, first, second } => {
            let (mut platform, description) = machine_context(&machine, opts)?;
            let wd_a = profile_on(&mut platform, &description, &first, opts)?;
            let wd_b = profile_on(&mut platform, &description, &second, opts)?;
            let start = Instant::now();
            let schedule = CoScheduler::new(&description)
                .with_objective(Objective::Makespan)
                .with_exec(exec.clone())
                .schedule(&[&wd_a, &wd_b])?;
            report_sweep(exec, "co-schedule search", 2, start, quiet);
            println!("joint placement on {}:", description.machine);
            for (a, p) in schedule.assignments.iter().zip(&schedule.predictions) {
                println!(
                    "  {:<10} {:>2} threads over sockets {:?}{}  predicted {:.2}s",
                    a.workload,
                    a.n_threads,
                    a.threads_per_socket,
                    if a.smt_packed { " (SMT packed)" } else { "" },
                    p.predicted_time
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Submit { log, job, class, machines } => {
            let mut events = read_event_log(&log)?;
            events.push(pandia_daemon::Event::Submit { job: job.clone(), class, priority: 0 });
            let daemon = replay(&events, machines, exec)?;
            std::fs::write(&log, pandia_daemon::render_log(&events))?;
            note_wrote(&log, quiet);
            // Show what the daemon did with this submission: every
            // transcript line from the final event.
            let marker = format!("[{:04}]", events.len() - 1);
            for line in daemon.transcript().lines().filter(|l| l.starts_with(&marker)) {
                println!("{line}");
            }
            Ok(ExitCode::SUCCESS)
        }
        Command::Status { log, machines, high_water } => {
            // Exit-code contract (scriptable health checks):
            //   0 = healthy, 1 = degraded (overload mode engaged),
            //   2 = unreachable (log missing, unreadable, or corrupt).
            let queue = match high_water {
                Some(mark) => pandia_daemon::QueuePolicy {
                    high_water: mark,
                    ..pandia_daemon::QueuePolicy::default()
                },
                None => pandia_daemon::QueuePolicy::default(),
            };
            let replayed = std::fs::read_to_string(&log)
                .map_err(|e| e.to_string())
                .and_then(|text| pandia_daemon::parse_log(&text).map_err(|e| e.to_string()))
                .and_then(|events| {
                    replay_with(&events, machines, exec, queue).map_err(|e| e.to_string())
                });
            let daemon = match replayed {
                Ok(daemon) => daemon,
                Err(e) => {
                    eprintln!("status: daemon log '{log}' unreachable: {e}");
                    return Ok(ExitCode::from(2));
                }
            };
            print!("{}", daemon.status_report());
            Ok(ExitCode::from(daemon.health()))
        }
        Command::Drain { log, machines } => {
            let mut events = read_event_log(&log)?;
            let mut daemon = replay(&events, machines, exec)?;
            // Persist the drain as explicit completion events so the log
            // stays the single source of truth.
            for job in daemon.live_jobs() {
                events.push(pandia_daemon::Event::Complete { job, elapsed: None });
            }
            daemon.drain()?;
            std::fs::write(&log, pandia_daemon::render_log(&events))?;
            note_wrote(&log, quiet);
            let audit = daemon.audit();
            println!(
                "drained: {} completed, {} failed, {} retries",
                audit.completed, audit.failed, audit.retries
            );
            Ok(ExitCode::SUCCESS)
        }
    }
}

/// Reads a daemon event log, treating a missing file as an empty log.
fn read_event_log(path: &str) -> Result<Vec<pandia_daemon::Event>, Box<dyn std::error::Error>> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(pandia_daemon::parse_log(&text)?),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(Box::new(e)),
    }
}

/// Replays an event log through a fresh daemon over a synthetic fleet.
fn replay(
    events: &[pandia_daemon::Event],
    machines: usize,
    exec: &ExecContext,
) -> Result<pandia_daemon::Daemon, Box<dyn std::error::Error>> {
    replay_with(events, machines, exec, pandia_daemon::QueuePolicy::default())
}

/// [`replay`] under an explicit queue policy (used by `status
/// --high-water` to judge health under a bounded queue).
fn replay_with(
    events: &[pandia_daemon::Event],
    machines: usize,
    exec: &ExecContext,
    queue: pandia_daemon::QueuePolicy,
) -> Result<pandia_daemon::Daemon, Box<dyn std::error::Error>> {
    let preset = pandia_daemon::synthetic(machines);
    let config = pandia_daemon::DaemonConfig {
        exec: exec.clone(),
        queue,
        ..pandia_daemon::DaemonConfig::default()
    };
    let mut daemon = pandia_daemon::Daemon::new(preset.machines, preset.catalog, config)?;
    daemon.run(events)?;
    Ok(daemon)
}

/// Stable command label used to tag the top-level CLI span.
fn command_name(command: &Command) -> &'static str {
    match command {
        Command::Help => "help",
        Command::Machines => "machines",
        Command::Workloads => "workloads",
        Command::Describe { .. } => "describe",
        Command::Profile { .. } => "profile",
        Command::Predict { .. } => "predict",
        Command::Best { .. } => "best",
        Command::Plan { .. } => "plan",
        Command::Explore { .. } => "explore",
        Command::CoSchedule { .. } => "coschedule",
        Command::Submit { .. } => "submit",
        Command::Status { .. } => "status",
        Command::Drain { .. } => "drain",
    }
}

fn machine_context(
    name: &str,
    opts: ProfileOpts,
) -> Result<(SimMachine, MachineDescription), Box<dyn std::error::Error>> {
    let spec = match name.to_ascii_lowercase().as_str() {
        "x5-2" => MachineSpec::x5_2(),
        "x4-2" => MachineSpec::x4_2(),
        "x3-2" => MachineSpec::x3_2(),
        "x2-4" => MachineSpec::x2_4(),
        other => {
            return Err(Box::new(PandiaError::Mismatch {
                reason: format!("unknown machine '{other}' (try x5-2, x4-2, x3-2, x2-4)"),
            }))
        }
    };
    // The machine description is always measured on a clean machine — in
    // practice it is generated once when the machine is commissioned.
    // `--faults` only afflicts the platform handed back for workload
    // profiling.
    let mut clean = SimMachine::new(spec.clone());
    let description = describe_machine(&mut clean)?;
    let platform = if opts.faults > 0.0 {
        SimMachine::with_config(
            spec,
            SimConfig::default().with_faults(FaultPlan::with_intensity(opts.faults)),
        )
    } else {
        clean
    };
    Ok((platform, description))
}

/// Profiling configuration for the CLI's `--faults`/`--robust` options.
fn profile_config(opts: ProfileOpts) -> ProfileConfig {
    ProfileConfig { robustness: opts.policy(), ..ProfileConfig::default() }
}

fn lookup_workload(name: &str) -> Result<pandia_workloads::WorkloadEntry, Box<dyn std::error::Error>> {
    pandia_workloads::by_name(name).ok_or_else(|| {
        Box::new(PandiaError::Mismatch {
            reason: format!("unknown workload '{name}' (see `pandiactl workloads`)"),
        }) as Box<dyn std::error::Error>
    })
}

fn profile_on(
    platform: &mut SimMachine,
    description: &MachineDescription,
    workload: &str,
    opts: ProfileOpts,
) -> Result<WorkloadDescription, Box<dyn std::error::Error>> {
    let entry = lookup_workload(workload)?;
    let profiler = WorkloadProfiler::with_config(description, profile_config(opts));
    Ok(profiler.profile(platform, &entry.behavior, entry.name)?.description)
}

fn print_description(d: &MachineDescription) {
    println!("machine description: {}", d.machine);
    println!(
        "  shape: {} sockets x {} cores x {} threads",
        d.shape.sockets, d.shape.cores_per_socket, d.shape.threads_per_core
    );
    println!("  core instruction rate : {:>8.2}", d.capacities.core_issue);
    println!("  SMT co-schedule factor: {:>8.2}", d.smt_coschedule_factor);
    println!("  L1 bandwidth / core   : {:>8.1}", d.capacities.l1_per_core);
    println!("  L2 bandwidth / core   : {:>8.1}", d.capacities.l2_per_core);
    println!("  L3 bandwidth / link   : {:>8.1}", d.capacities.l3_per_link);
    println!("  L3 aggregate / socket : {:>8.1}", d.capacities.l3_aggregate);
    println!("  DRAM / socket         : {:>8.1}", d.capacities.dram_per_socket);
    println!("  interconnect / link   : {:>8.1}", d.capacities.interconnect_per_link);
}
