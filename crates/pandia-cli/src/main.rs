//! `pandiactl` — command-line front-end for the placement modeler.
//!
//! ```text
//! pandiactl machines                          list machine presets
//! pandiactl workloads                         list registered workloads
//! pandiactl describe <machine> [-o FILE]      measure a machine description (§3)
//! pandiactl profile <machine> <workload>      run the six profiling runs (§4)
//! pandiactl predict <machine> <workload> -p "2,1|1"
//!                                          predict one placement (§5)
//! pandiactl best <machine> <workload> [--tolerance 0.95]
//!                                          best + resource-saving placement
//! pandiactl explore <machine> <workload>      measured-vs-predicted curve
//! pandiactl coschedule <machine> <w1> <w2>    joint placement for two jobs
//! ```
//!
//! Machines are simulated presets (`x5-2`, `x4-2`, `x3-2`, `x2-4`); on real
//! hardware the same commands would drive a perf-event platform.

mod args;
mod commands;

use std::process::ExitCode;

/// Whether a panic payload is the broken-pipe panic `println!` raises
/// when stdout is closed early (e.g. piping into `head`).
fn is_broken_pipe(payload: &(dyn std::any::Any + Send)) -> bool {
    let message = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("");
    message.contains("Broken pipe")
}

fn main() -> ExitCode {
    // Exiting because the reader closed the pipe is normal CLI behavior,
    // not a crash: suppress the panic message and exit cleanly.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !is_broken_pipe(info.payload()) {
            default_hook(info);
        }
    }));

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (argv, flags) = match args::extract_exec_flags(&argv) {
        Ok(extracted) => extracted,
        Err(message) => {
            eprintln!("{message}");
            eprintln!("\n{}", args::USAGE);
            return ExitCode::from(2);
        }
    };
    // Installs the global recorder when either sink flag was given and
    // writes the files when dropped at the end of `main`; without the
    // flags telemetry stays off and the guard is inert.
    let _telemetry = pandia_harness::experiments::TelemetryGuard::new(
        flags.trace_out.clone(),
        flags.metrics_out.clone(),
        flags.events_out.clone(),
        flags.quiet,
    );
    let exec = match flags.jobs {
        Some(jobs) => pandia_core::ExecContext::new(jobs),
        None => pandia_core::ExecContext::auto(),
    }
    .with_cache(flags.cache);
    let quiet = flags.quiet;
    let opts = commands::ProfileOpts { faults: flags.faults, robust: flags.robust };
    match args::parse(&argv) {
        Ok(command) => match std::panic::catch_unwind(|| {
            commands::run(command, &exec, quiet, opts)
        }) {
            Ok(Ok(code)) => code,
            Ok(Err(e)) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
            Err(payload) if is_broken_pipe(payload.as_ref()) => ExitCode::SUCCESS,
            Err(payload) => std::panic::resume_unwind(payload),
        },
        Err(message) => {
            eprintln!("{message}");
            eprintln!("\n{}", args::USAGE);
            ExitCode::from(2)
        }
    }
}
