//! Smoke and semantics tests for the experiment drivers at quick coverage.

use pandia_harness::{
    experiments::{ablation, four_socket, sweep, worked_example, Coverage},
    metrics, report, MachineContext,
};

#[test]
fn coverage_quick_is_small_but_complete() {
    let ctx = MachineContext::x3_2().unwrap();
    let quick = Coverage::Quick.placements(&ctx);
    // Every thread count represented, at most 3 placements each.
    let max = ctx.description.shape.total_contexts();
    let mut by_n = vec![0usize; max + 1];
    for p in &quick {
        by_n[p.total_threads()] += 1;
    }
    for (n, &count) in by_n.iter().enumerate().skip(1) {
        assert!(count >= 1, "thread count {n} missing");
        assert!(count <= 3);
    }
}

#[test]
fn coverage_paper_is_exhaustive_on_small_machines() {
    let ctx = MachineContext::x3_2().unwrap();
    let paper = Coverage::Paper.placements(&ctx);
    assert_eq!(paper.len(), 1034, "X3-2 space is enumerated exhaustively");
}

#[test]
fn worked_example_driver_round_trips() {
    let ex = worked_example::run().unwrap();
    assert!((ex.converged.speedup - 1.005).abs() < 0.02);
    let text = worked_example::render(&ex);
    assert!(text.contains("Worked example"));
    assert!(text.contains("2.87") || text.contains("2.86"));
}

#[test]
fn ablation_variants_modify_the_right_knob() {
    let machine = pandia_core::MachineDescription::toy();
    let workload = pandia_core::WorkloadDescription::example();
    for variant in ablation::Variant::ALL {
        let (m, w) = variant.apply(&machine, &workload);
        match variant {
            ablation::Variant::Full => {
                assert_eq!(m, machine);
                assert_eq!(w, workload);
            }
            ablation::Variant::NoBurstiness => assert_eq!(w.burstiness, 0.0),
            ablation::Variant::NoInterSocket => assert_eq!(w.inter_socket_overhead, 0.0),
            ablation::Variant::NoLoadBalance => assert_eq!(w.load_balance, 1.0),
            ablation::Variant::NoSmtFactor => assert_eq!(m.smt_coschedule_factor, 1.0),
            ablation::Variant::NoAggregateL3 => assert!(
                m.capacities.l3_aggregate
                    >= m.capacities.l3_per_link * m.shape.cores_per_socket as f64 - 1e-9
            ),
        }
    }
}

#[test]
fn four_socket_classes_nest() {
    let classes = four_socket::classes();
    assert_eq!(classes.len(), 3);
    let ctx = MachineContext::x2_4().unwrap();
    let placements = Coverage::Quick.placements(&ctx);
    let counts: Vec<usize> = classes
        .iter()
        .map(|(_, class)| placements.iter().filter(|p| class.contains(p)).count())
        .collect();
    // 2-socket ⊆ whole machine; 20-core ⊆ whole machine.
    assert!(counts[0] <= counts[2]);
    assert!(counts[1] <= counts[2]);
    assert_eq!(counts[2], placements.len());
    assert!(counts[0] > 0 && counts[1] > 0);
}

#[test]
fn sweep_driver_reports_costs_and_hits() {
    let mut ctx = MachineContext::x3_2().unwrap();
    let result =
        sweep::run_subset(&mut ctx, Coverage::Quick, &["EP", "CG", "MD", "Swim"]).unwrap();
    assert_eq!(result.outcomes.len(), 4);
    for o in &result.outcomes {
        assert!(o.sweep_cost > 0.0 && o.profiling_cost > 0.0);
        assert!(o.sweep_best >= 0.0 && o.global_best <= o.sweep_best * 1.001);
    }
    // The sweep runs many more placements than six profiling runs.
    assert!(result.mean_cost_ratio() > 1.0, "ratio {}", result.mean_cost_ratio());
    let text = sweep::render(&result);
    assert!(text.contains("mean cost ratio"));
}

#[test]
fn error_stats_match_hand_computed_values() {
    use pandia_harness::runner::{CurvePoint, PlacementCurve};
    use pandia_topology::CanonicalPlacement;
    // Two points; measured normalized = [0.5, 1.0], predicted = [1.0, 1.0]
    // after normalization => errors = [100%, 0%].
    let curve = PlacementCurve {
        workload: "w".into(),
        machine: "m".into(),
        points: vec![
            CurvePoint {
                placement: CanonicalPlacement::new(vec![vec![1]]),
                n_threads: 1,
                measured: 20.0,
                predicted: 10.0,
            },
            CurvePoint {
                placement: CanonicalPlacement::new(vec![vec![1, 1]]),
                n_threads: 2,
                measured: 10.0,
                predicted: 10.0,
            },
        ],
    };
    let stats = metrics::error_stats(&curve);
    assert!((stats.mean_error_pct - 50.0).abs() < 1e-9);
    assert!((stats.median_error_pct - 50.0).abs() < 1e-9);
    let csv = report::curve_csv(&curve);
    assert!(csv.contains("1.000000")); // normalized best
}
