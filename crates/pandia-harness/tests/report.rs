//! Golden and behavior tests for the `pandia-report` attribution
//! pipeline, run against the synthetic captures in `tests/fixtures/`.
//!
//! `trace_report.json` models one run with nested spans on the driver
//! lane, two `exec/worker` lanes (one finishing late, one early), a
//! simulated-time track, and a counter event — enough structure to pin
//! exclusive-time partitioning, cross-lane critical-path adoption, and
//! the Amdahl ranking in one golden. The goldens under `tests/goldens/`
//! are the rendered text/JSON/CSV; re-bless after an intentional format
//! change with `PANDIA_BLESS_GOLDENS=1 cargo test -p pandia-harness
//! --test report`.

use std::path::PathBuf;
use std::process::Command;

use pandia_harness::{analyze_captures, parse_capture, Capture};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Parses a fixture with its bare file name as the label, so rendered
/// reports (and the goldens) stay independent of the checkout path.
fn fixture_capture(name: &str) -> Capture {
    let text = std::fs::read_to_string(fixture_dir().join(name)).expect("fixture readable");
    parse_capture(&text, name).expect("fixture parses")
}

fn check_or_bless(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name);
    if std::env::var_os("PANDIA_BLESS_GOLDENS").is_some() {
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden {}: {e} (re-bless with PANDIA_BLESS_GOLDENS=1)", path.display())
    });
    assert_eq!(actual, expected, "{name} diverged from the committed golden");
}

#[test]
fn fixture_report_matches_the_goldens() {
    let report = analyze_captures(&[fixture_capture("trace_report.json")]).expect("report");
    check_or_bless("report_fixture.txt", &report.render_text());
    check_or_bless("report_fixture.json", &report.render_json());
    check_or_bless("report_fixture.csv", &report.render_csv());
}

#[test]
fn fixture_attribution_is_exact() {
    let report = analyze_captures(&[fixture_capture("trace_report.json")]).expect("report");
    let run = &report.runs[0];

    // Wall busy time = the three lane roots: 10000 + 8800 + 6400.
    assert_eq!(run.wall_total_us, 25_200.0);
    assert_eq!(run.sim_total_us, 8_000.0);

    // Exclusive times partition lane busy time exactly.
    let wall_self: f64 = run
        .phases
        .iter()
        .filter(|p| p.track == pandia_obs::Track::Wall)
        .map(|p| p.exclusive_us)
        .sum();
    assert!((wall_self - run.wall_total_us).abs() < 1e-9);

    // The dominant phase by self time is sim/run (7300 + 6200), and the
    // Amdahl table ranks it first with ceiling 1 / (1 - 13500/25200).
    let top = &run.amdahl[0];
    assert_eq!(top.phase, "sim/run");
    assert_eq!(top.exclusive_us, 13_500.0);
    assert!((top.ceiling - 1.0 / (1.0 - 13_500.0 / 25_200.0)).abs() < 1e-9);

    // Critical path: driver root -> parallel_map -> the late worker on
    // lane 2 (adopted cross-lane) -> its last-finishing child.
    let path: Vec<&str> = run.critical_path.iter().map(|s| s.phase.as_str()).collect();
    assert_eq!(
        path,
        ["harness/measure_curve", "exec/parallel_map", "exec/worker", "predictor/predict"]
    );
}

#[test]
fn lossy_fixture_warns_loudly() {
    let report = analyze_captures(&[fixture_capture("trace_lossy.json")]).expect("report");
    assert!(report.lossy);
    let warning = report.loss_warning().expect("lossy capture must warn");
    assert!(warning.contains("LOSSY"), "{warning}");
    assert!(warning.contains("trace_lossy.json: 3 span(s) dropped"), "{warning}");
    assert!(report.render_text().starts_with("WARNING: LOSSY CAPTURE"));
}

#[test]
fn multi_run_reports_cover_both_fixture_captures() {
    // trace_a/trace_b are the same experiment captured twice (the
    // trace_diff fixtures); feeding both produces the stability table.
    let report = analyze_captures(&[
        fixture_capture("trace_a.json"),
        fixture_capture("trace_b.json"),
    ])
    .expect("report");
    assert_eq!(report.runs.len(), 2);
    assert!(!report.comparison.is_empty());
    let profile = report
        .comparison
        .iter()
        .find(|n| n.phase == "harness/profile")
        .expect("shared phase compared");
    assert_eq!(profile.runs, 2);
    // Medians over {2000, 2200}: midpoint, MAD = 100.
    assert_eq!(profile.median_us, 2_100.0);
    assert_eq!(profile.mad_us, 100.0);
}

#[test]
fn report_binary_is_byte_identical_run_to_run() {
    let bin = env!("CARGO_BIN_EXE_pandia_report");
    let fixture = fixture_dir().join("trace_report.json");
    let run = |json: &std::path::Path, csv: &std::path::Path| {
        let output = Command::new(bin)
            .arg(&fixture)
            .arg("--json")
            .arg(json)
            .arg("--csv")
            .arg(csv)
            .output()
            .expect("pandia_report runs");
        assert!(output.status.success(), "stderr: {}", String::from_utf8_lossy(&output.stderr));
        output.stdout
    };
    let dir = std::env::temp_dir();
    let (json1, csv1) = (dir.join("pandia_report_1.json"), dir.join("pandia_report_1.csv"));
    let (json2, csv2) = (dir.join("pandia_report_2.json"), dir.join("pandia_report_2.csv"));
    let stdout1 = run(&json1, &csv1);
    let stdout2 = run(&json2, &csv2);
    assert_eq!(stdout1, stdout2, "text report must be byte-identical run-to-run");
    assert_eq!(
        std::fs::read(&json1).unwrap(),
        std::fs::read(&json2).unwrap(),
        "JSON report must be byte-identical run-to-run"
    );
    assert_eq!(
        std::fs::read(&csv1).unwrap(),
        std::fs::read(&csv2).unwrap(),
        "CSV report must be byte-identical run-to-run"
    );
    // The machine-readable form is schema-tagged, parseable JSON.
    let json_text = std::fs::read_to_string(&json1).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(json_text.trim()).expect("JSON parses");
    let schema = parsed
        .as_object()
        .and_then(|o| o.iter().find(|(k, _)| k == "schema"))
        .and_then(|(_, v)| v.as_str());
    assert_eq!(schema, Some("pandia-report-v1"));
    for p in [json1, csv1, json2, csv2] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn report_binary_rejects_junk_input() {
    let bin = env!("CARGO_BIN_EXE_pandia_report");
    let output = Command::new(bin).output().expect("pandia_report runs");
    assert_eq!(output.status.code(), Some(2), "no captures is a usage error");
    let dir = std::env::temp_dir().join("pandia_report_junk.json");
    std::fs::write(&dir, "not json").unwrap();
    let output = Command::new(bin).arg(&dir).output().expect("pandia_report runs");
    assert_eq!(output.status.code(), Some(2), "junk input is an input error");
    let _ = std::fs::remove_file(dir);
}
