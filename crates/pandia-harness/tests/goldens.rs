//! Byte-identity regression for the figure 10 / figure 11 result files.
//!
//! The paper's error figures are only meaningful if the prediction
//! pipeline is bit-reproducible: a change that perturbs comparator
//! semantics (e.g. swapping `partial_cmp(..).unwrap_or(Equal)` for
//! `f64::total_cmp`) or map iteration order must not move a single byte
//! of the emitted CSVs. The goldens under `tests/goldens/` were captured
//! before the `total_cmp` migration; this test regenerates the same
//! artifacts through the library APIs and compares bytes.
//!
//! To re-bless after an *intentional* output change:
//! `PANDIA_BLESS_GOLDENS=1 cargo test -p pandia-harness --test goldens`

use std::path::PathBuf;

use pandia_core::ExecContext;
use pandia_harness::experiments::{curves, errors};
use pandia_harness::{report, MachineContext};
use pandia_sim::{FaultPlan, SimConfig, SimMachine};

/// Workloads covered by the golden capture: a memory-bound, a
/// CPU-bound, and a lock-heavy representative keep the comparators'
/// tie-breaking behavior exercised without a full-suite sweep.
const WORKLOADS: [&str; 3] = ["CG", "EP", "MD"];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens")
}

fn check_or_bless(name: &str, actual: &str) {
    let path = golden_dir().join(name);
    if std::env::var_os("PANDIA_BLESS_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden files live in a dir"))
            .expect("create goldens dir");
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e} (re-bless with PANDIA_BLESS_GOLDENS=1)", path.display()));
    assert_eq!(
        actual,
        expected,
        "{name} diverged from the pre-migration capture: fig10/fig11 outputs must stay byte-identical"
    );
}

#[test]
fn fig10_fig11_outputs_are_byte_identical_to_goldens() {
    let ctx = MachineContext::by_name("x3-2").expect("x3-2 preset");
    // Same candidate set as the binaries' `--quick` coverage.
    let placements = ctx.enumerator().sampled(&ctx.spec, 3);
    let exec = ExecContext::new(2).with_cache(true);
    let workloads: Vec<_> = WORKLOADS
        .iter()
        .map(|n| pandia_workloads::by_name(n).expect("registered workload"))
        .collect();

    // Figure 10: one measured-vs-predicted curve CSV per workload.
    for w in &workloads {
        let curve = curves::workload_curve_with(&exec, &ctx, w, &placements)
            .expect("placement sweep");
        check_or_bless(
            &format!("fig10_x3-2_{}.csv", w.name),
            &report::curve_csv(&curve),
        );
    }

    // Figure 11: per-workload error bars, both the human table and the CSV.
    let bars = errors::error_bars_with(&exec, &ctx, &workloads, &placements)
        .expect("error sweep");
    let title = format!("Figure 11 — errors on {}", bars.title);
    check_or_bless("fig11_x3-2.txt", &report::error_table(&title, &bars.stats));
    check_or_bless("fig11_x3-2.csv", &report::error_csv(&bars.stats));
}

/// The robustness layer must be invisible when disarmed: a platform
/// carrying an explicit zero-rate [`FaultPlan`] and the default (naive)
/// [`pandia_core::RobustnessPolicy`] must reproduce the pre-robustness
/// goldens byte for byte — the fault gates may not consume a single RNG
/// draw and the default aggregation path may not move a bit.
#[test]
fn zero_fault_plan_leaves_goldens_byte_identical() {
    let mut ctx = MachineContext::by_name("x3-2").expect("x3-2 preset");
    ctx.platform = SimMachine::with_config(
        ctx.spec.clone(),
        SimConfig::default().with_faults(FaultPlan::none()),
    );
    let placements = ctx.enumerator().sampled(&ctx.spec, 3);
    let exec = ExecContext::new(2).with_cache(true);
    let workloads: Vec<_> = WORKLOADS
        .iter()
        .map(|n| pandia_workloads::by_name(n).expect("registered workload"))
        .collect();

    for w in &workloads {
        let curve = curves::workload_curve_with(&exec, &ctx, w, &placements)
            .expect("placement sweep");
        check_or_bless(
            &format!("fig10_x3-2_{}.csv", w.name),
            &report::curve_csv(&curve),
        );
    }
    let bars = errors::error_bars_with(&exec, &ctx, &workloads, &placements)
        .expect("error sweep");
    check_or_bless("fig11_x3-2.csv", &report::error_csv(&bars.stats));
}

/// The incremental fast path (solve reuse + steady-segment coalescing,
/// on by default) must be invisible in the committed outputs: running the
/// same sweeps with `incremental` disabled must reproduce the fig10/fig11
/// goldens byte for byte. Together with the default-config test above,
/// this pins both engine paths to the same bytes.
#[test]
fn incremental_escape_hatch_leaves_goldens_byte_identical() {
    let mut ctx = MachineContext::by_name("x3-2").expect("x3-2 preset");
    ctx.platform = SimMachine::with_config(
        ctx.spec.clone(),
        SimConfig::default().with_incremental(false),
    );
    let placements = ctx.enumerator().sampled(&ctx.spec, 3);
    let exec = ExecContext::new(2).with_cache(true);
    let workloads: Vec<_> = WORKLOADS
        .iter()
        .map(|n| pandia_workloads::by_name(n).expect("registered workload"))
        .collect();

    for w in &workloads {
        let curve = curves::workload_curve_with(&exec, &ctx, w, &placements)
            .expect("placement sweep");
        check_or_bless(
            &format!("fig10_x3-2_{}.csv", w.name),
            &report::curve_csv(&curve),
        );
    }
    let bars = errors::error_bars_with(&exec, &ctx, &workloads, &placements)
        .expect("error sweep");
    check_or_bless("fig11_x3-2.txt", &report::error_table(
        &format!("Figure 11 — errors on {}", bars.title),
        &bars.stats,
    ));
    check_or_bless("fig11_x3-2.csv", &report::error_csv(&bars.stats));
}

/// Coalescing must never skip over an injected fault: with a nonzero
/// [`FaultPlan`] armed, every segment boundary is preserved (the engine
/// reports zero coalesced segments), while the same run without the plan
/// coalesces freely. Run at the platform level so the whole
/// request-to-engine plumbing is covered, not just the engine loop.
#[test]
fn armed_fault_plan_forces_segment_boundaries() {
    use pandia_topology::{MultiRunRequest, Placement};

    let ctx = MachineContext::by_name("x3-2").expect("x3-2 preset");
    let workload = pandia_workloads::by_name("EP").expect("registered workload");
    let behavior = workload.behavior.clone();
    let placement = Placement::spread(&ctx.spec, 4).expect("4 threads fit");

    let mut clean = SimMachine::with_config(ctx.spec.clone(), SimConfig::default());
    let req = MultiRunRequest::new(vec![(behavior, placement)]);
    let (_, clean_stats) = clean.run_multi_stats(&req).expect("fault-free run");
    assert!(
        clean_stats.segments_coalesced > 0,
        "smooth fault-free run should coalesce: {clean_stats:?}"
    );
    assert!(
        clean_stats.solves_skipped > 0,
        "steady re-solves should hit the cache: {clean_stats:?}"
    );

    let mut chaotic = SimMachine::with_config(
        ctx.spec.clone(),
        SimConfig::default().with_faults(FaultPlan::with_intensity(0.4)),
    );
    // Scan a few seeds so at least one run survives the transient gate.
    let mut surviving = 0;
    for seed in 0..8u64 {
        let seeded = MultiRunRequest { seed, ..req.clone() };
        if let Ok((_, stats)) = chaotic.run_multi_stats(&seeded) {
            surviving += 1;
            assert_eq!(
                stats.segments_coalesced, 0,
                "seed {seed}: coalescing skipped past an armed fault plan: {stats:?}"
            );
            assert_eq!(
                stats.segments, clean_stats.segments,
                "seed {seed}: fault plan changed the segment schedule"
            );
        }
    }
    assert!(surviving > 0, "every seed hit the transient gate");
}
