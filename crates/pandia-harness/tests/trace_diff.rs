//! Unit and exit-code tests for the trace-diff harness, run against two
//! synthetic `--trace-out` captures checked into `tests/fixtures/`.
//!
//! The fixtures model one experiment captured twice: two `harness/profile`
//! spans slow down by 10%, the `sim/run` span regresses by 80%, one span
//! changes identity between captures (seq 4), and the candidate gains a
//! brand-new span (seq 5). Simulated-time (pid 2) spans and counter
//! events must be ignored entirely.

use std::path::PathBuf;
use std::process::Command;

use pandia_harness::{diff_trace_files, diff_traces};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn fixture_text(name: &str) -> String {
    std::fs::read_to_string(fixture(name)).expect("fixture readable")
}

#[test]
fn phases_aggregate_matched_spans_by_identity() {
    let diff = diff_traces(&fixture_text("trace_a.json"), &fixture_text("trace_b.json"))
        .expect("fixtures diff cleanly");

    assert_eq!(diff.matched, 3, "seqs 1-3 pair up: {diff:?}");
    assert_eq!(diff.only_base, 1, "seq 4 changed identity: {diff:?}");
    assert_eq!(diff.only_cand, 2, "seq 4 changed identity, seq 5 is new: {diff:?}");

    let labels: Vec<&str> = diff.phases.iter().map(|p| p.phase.as_str()).collect();
    assert_eq!(labels, ["harness/profile", "sim/run"], "phase order is label order");

    let profile = &diff.phases[0];
    assert_eq!(profile.spans, 2);
    assert_eq!(profile.base_us, 2000.0);
    assert_eq!(profile.cand_us, 2200.0);
    assert!((profile.delta_pct() - 10.0).abs() < 1e-9, "{}", profile.delta_pct());

    let run = &diff.phases[1];
    assert_eq!(run.spans, 1);
    assert_eq!(run.base_us, 500.0);
    assert_eq!(run.cand_us, 900.0);
    assert!((run.delta_pct() - 80.0).abs() < 1e-9, "{}", run.delta_pct());
}

#[test]
fn worst_regression_tracks_the_slowest_phase_only() {
    let a = fixture_text("trace_a.json");
    let b = fixture_text("trace_b.json");

    let diff = diff_traces(&a, &b).expect("fixtures diff cleanly");
    assert!(
        (diff.worst_regression_pct() - 80.0).abs() < 1e-9,
        "sim/run dominates: {}",
        diff.worst_regression_pct()
    );

    // Reversed, every phase improves, so the worst regression clamps to 0.
    let reversed = diff_traces(&b, &a).expect("fixtures diff cleanly");
    assert_eq!(reversed.worst_regression_pct(), 0.0, "{reversed:?}");
}

#[test]
fn file_diff_renders_an_aligned_table() {
    let diff = diff_trace_files(&fixture("trace_a.json"), &fixture("trace_b.json"))
        .expect("fixtures diff cleanly");
    let table = diff.render();
    assert!(table.contains("harness/profile"), "{table}");
    assert!(table.contains("sim/run"), "{table}");
    assert!(
        table.contains("matched 3 span pair(s); 1 only in baseline; 2 only in candidate"),
        "{table}"
    );
}

#[test]
fn rejects_non_trace_documents() {
    let err = diff_traces(r#"{"not": "a trace"}"#, r#"{"also": "not"}"#)
        .expect_err("schema check fires");
    assert!(err.contains("baseline"), "{err}");
    assert!(err.contains("pandia-trace-v1"), "{err}");
}

fn run_bin(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_trace_diff"))
        .args(args)
        .output()
        .expect("trace_diff binary runs")
}

#[test]
fn bin_exit_codes_follow_the_threshold() {
    let a = fixture("trace_a.json");
    let b = fixture("trace_b.json");
    let (a, b) = (a.to_str().expect("utf-8 path"), b.to_str().expect("utf-8 path"));

    // The worst phase regressed 80%: a 100% gate passes, a 50% gate fails.
    let ok = run_bin(&[a, b, "--fail-above", "100"]);
    assert_eq!(ok.status.code(), Some(0), "{ok:?}");
    let stdout = String::from_utf8_lossy(&ok.stdout);
    assert!(stdout.contains("sim/run"), "{stdout}");

    let fail = run_bin(&[a, b, "--fail-above", "50"]);
    assert_eq!(fail.status.code(), Some(1), "{fail:?}");
    let stderr = String::from_utf8_lossy(&fail.stderr);
    assert!(stderr.contains("exceeds"), "{stderr}");

    // Without a threshold the diff is informational: always exit 0.
    let info = run_bin(&[a, b]);
    assert_eq!(info.status.code(), Some(0), "{info:?}");
}

#[test]
fn bin_reports_usage_and_io_errors_as_exit_2() {
    let usage = run_bin(&["only-one-arg"]);
    assert_eq!(usage.status.code(), Some(2), "{usage:?}");
    assert!(String::from_utf8_lossy(&usage.stderr).contains("usage"), "{usage:?}");

    let a = fixture("trace_a.json");
    let missing = run_bin(&[a.to_str().expect("utf-8 path"), "/nonexistent/trace.json"]);
    assert_eq!(missing.status.code(), Some(2), "{missing:?}");

    let flag = run_bin(&["--bogus"]);
    assert_eq!(flag.status.code(), Some(2), "{flag:?}");
}
