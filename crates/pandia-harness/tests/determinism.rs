//! Determinism regression test for the parallel execution layer: the
//! Figure 11 experiment must serialize to exactly the same bytes no
//! matter how many worker threads evaluate it, and no matter whether
//! the prediction cache is enabled, cold, or warm.

use pandia_core::ExecContext;
use pandia_harness::experiments::errors::error_bars_with;
use pandia_harness::MachineContext;

#[test]
fn fig11_is_byte_identical_across_jobs_and_cache() {
    let ctx = MachineContext::x3_2().expect("machine context");
    let workloads: Vec<_> = ["EP", "CG"]
        .iter()
        .map(|n| pandia_workloads::by_name(n).expect("registered workload"))
        .collect();
    let placements = ctx.enumerator().sampled(&ctx.spec, 3);

    let serial = ExecContext::serial();
    let baseline = error_bars_with(&serial, &ctx, &workloads, &placements).expect("serial run");
    let baseline_json = serde_json::to_string(&baseline.curves).expect("serialize");

    for jobs in [1, 4] {
        for cache in [true, false] {
            let exec = ExecContext::new(jobs).with_cache(cache);
            // Two passes over the same context: the second one exercises
            // warm-cache lookups when the cache is enabled.
            for pass in ["cold", "warm"] {
                let result =
                    error_bars_with(&exec, &ctx, &workloads, &placements).expect("parallel run");
                let json = serde_json::to_string(&result.curves).expect("serialize");
                assert_eq!(
                    json, baseline_json,
                    "jobs={jobs}, cache={cache}, {pass} pass diverged from serial output"
                );
                assert_eq!(result.title, baseline.title);
                assert_eq!(result.stats.len(), baseline.stats.len());
            }
            let stats = exec.cache_stats();
            if cache {
                assert!(stats.hits > 0, "warm pass produced no cache hits: {stats:?}");
            } else {
                assert_eq!(stats.hits + stats.misses, 0, "disabled cache was consulted");
            }
        }
    }
}
