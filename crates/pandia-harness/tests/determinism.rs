//! Determinism regression test for the parallel execution layer: the
//! Figure 11 experiment must serialize to exactly the same bytes no
//! matter how many worker threads evaluate it, and no matter whether
//! the prediction cache is enabled, cold, or warm.

use pandia_core::ExecContext;
use pandia_harness::experiments::errors::error_bars_with;
use pandia_harness::experiments::{chaos, Coverage};
use pandia_harness::MachineContext;

#[test]
fn fig11_is_byte_identical_across_jobs_and_cache() {
    let ctx = MachineContext::x3_2().expect("machine context");
    let workloads: Vec<_> = ["EP", "CG"]
        .iter()
        .map(|n| pandia_workloads::by_name(n).expect("registered workload"))
        .collect();
    let placements = ctx.enumerator().sampled(&ctx.spec, 3);

    let serial = ExecContext::serial();
    let baseline = error_bars_with(&serial, &ctx, &workloads, &placements).expect("serial run");
    let baseline_json = serde_json::to_string(&baseline.curves).expect("serialize");

    for jobs in [1, 4] {
        for cache in [true, false] {
            let exec = ExecContext::new(jobs).with_cache(cache);
            // Two passes over the same context: the second one exercises
            // warm-cache lookups when the cache is enabled.
            for pass in ["cold", "warm"] {
                let result =
                    error_bars_with(&exec, &ctx, &workloads, &placements).expect("parallel run");
                let json = serde_json::to_string(&result.curves).expect("serialize");
                assert_eq!(
                    json, baseline_json,
                    "jobs={jobs}, cache={cache}, {pass} pass diverged from serial output"
                );
                assert_eq!(result.title, baseline.title);
                assert_eq!(result.stats.len(), baseline.stats.len());
            }
            let stats = exec.cache_stats();
            if cache {
                assert!(stats.hits > 0, "warm pass produced no cache hits: {stats:?}");
            } else {
                assert_eq!(stats.hits + stats.misses, 0, "disabled cache was consulted");
            }
        }
    }
}

/// The chaos sweep injects faults, retries, and rejects outliers — all
/// of which must still be a pure function of the seed. The same sweep on
/// 1 and 4 workers must serialize to the same bytes, and every fault the
/// pipeline survives must be visible in the cell audits. (The accuracy
/// headline — robust beating naive at high intensity — needs the full
/// 3-trial sweep and is asserted by the CI chaos smoke job instead.)
#[test]
fn chaos_sweep_is_byte_identical_across_jobs() {
    let baseline_json;
    {
        let mut ctx = MachineContext::x3_2().expect("machine context");
        let exec = ExecContext::new(1).with_cache(true);
        let result = chaos::run(&exec, &mut ctx, Coverage::Quick, 1, 0xC4A0)
            .expect("chaos sweep, jobs=1");
        baseline_json = serde_json::to_string(&result).expect("serialize");

        // Fault handling is observable, not silent: under faults the
        // naive cells lose repeats and the robust cells spend retries.
        let naive_faulted: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.intensity > 0.5 && c.policy == "naive")
            .collect();
        let robust_faulted: Vec<_> = result
            .cells
            .iter()
            .filter(|c| c.intensity > 0.5 && c.policy == "robust")
            .collect();
        assert!(!naive_faulted.is_empty() && !robust_faulted.is_empty());
        for c in &naive_faulted {
            assert!(c.lost_repeats > 0, "naive cell lost nothing: {c:?}");
            assert_eq!(c.retries, 0, "naive cell retried: {c:?}");
        }
        for c in &robust_faulted {
            assert!(c.retries > 0, "robust cell never retried: {c:?}");
            assert_eq!(c.lost_repeats, 0, "robust cell lost a repeat: {c:?}");
        }
    }

    let mut ctx = MachineContext::x3_2().expect("machine context");
    let exec = ExecContext::new(4).with_cache(true);
    let result =
        chaos::run(&exec, &mut ctx, Coverage::Quick, 1, 0xC4A0).expect("chaos sweep, jobs=4");
    let json = serde_json::to_string(&result).expect("serialize");
    assert_eq!(json, baseline_json, "jobs=4 chaos sweep diverged from jobs=1");
}
