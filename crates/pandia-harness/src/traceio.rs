//! Reading telemetry captures back in: the span-parsing core shared by
//! [`crate::tracediff`] (the `trace_diff` regression gate) and
//! [`crate::attribution`] (the `pandia-report` analytics).
//!
//! Three on-disk formats, all produced by `pandia-obs`, parse into one
//! [`Capture`] model:
//!
//! * `pandia-trace-v1` — a Chrome trace-event JSON document
//!   (`--trace-out`): complete spans on both tracks, final counter
//!   values, and the span-buffer bookkeeping in `otherData`.
//! * `pandia-events-v1` — a span-event JSONL stream (`--events-out`):
//!   spans only, plus any in-band `{"type":"dropped"}` loss markers.
//! * `pandia-metrics-v1` — a metrics JSONL registry dump
//!   (`--metrics-out`): counters, gauges, and histograms, no spans.
//!
//! The format is sniffed from the content, so callers can hand
//! `pandia-report` any mix of capture files.

use std::collections::BTreeMap;

use pandia_obs::{HistogramSnapshot, Track, HISTOGRAM_BUCKET_BOUNDS};
use serde_json::Value;

/// One completed span read back from a capture.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureSpan {
    /// Logical sequence number (creation order across the whole run).
    pub seq: u64,
    /// The timeline the span lives on (wall clock vs simulated time).
    pub track: Track,
    /// Lane within the track: thread id for wall spans, virtual lane for
    /// sim spans.
    pub tid: u32,
    /// Span category (the instrumentation layer: `"sim"`, `"exec"`, ...).
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Start timestamp, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds.
    pub dur_us: f64,
}

impl CaptureSpan {
    /// End timestamp, microseconds.
    pub fn end_us(&self) -> f64 {
        self.ts_us + self.dur_us
    }

    /// The `cat/name` phase label spans aggregate under.
    pub fn phase(&self) -> String {
        format!("{}/{}", self.cat, self.name)
    }
}

/// A telemetry capture parsed back into memory.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Capture {
    /// Label for error messages and report headers (usually the file
    /// name).
    pub label: String,
    /// The schema tag the capture carried.
    pub schema: String,
    /// Spans ordered by sequence number (empty for metrics captures).
    pub spans: Vec<CaptureSpan>,
    /// Final counter values by name (trace and metrics captures).
    pub counters: BTreeMap<String, u64>,
    /// Final gauge values by name (metrics captures).
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name (metrics captures).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Spans recorded by the capture's recorder (trace captures report
    /// this even when the event list was truncated).
    pub recorded_spans: u64,
    /// Spans dropped because the recorder's event buffer was full — a
    /// nonzero value means the capture is lossy and every span-derived
    /// statistic is a lower bound.
    pub dropped_spans: u64,
}

/// Looks up a member of a JSON object value by key.
pub(crate) fn field<'a>(value: &'a Value, name: &str) -> Option<&'a Value> {
    value.as_object()?.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// The value as a non-negative integer, if it is one.
pub(crate) fn as_u64(value: &Value) -> Option<u64> {
    match value {
        Value::Number(serde::Number::PosInt(n)) => Some(*n),
        _ => None,
    }
}

fn str_of(value: &Value, key: &str) -> Option<String> {
    field(value, key).and_then(Value::as_str).map(str::to_string)
}

/// Parses one capture, sniffing the format from the content.
pub fn parse_capture(text: &str, label: &str) -> Result<Capture, String> {
    let head = text.trim_start();
    if head.is_empty() {
        return Err(format!("{label}: empty capture"));
    }
    // JSONL captures put their schema on the first line; the Chrome
    // trace document's schema hides inside `otherData`.
    let first_line = head.lines().next().unwrap_or("");
    if let Ok(meta) = serde_json::from_str::<Value>(first_line) {
        match str_of(&meta, "schema").as_deref() {
            Some(pandia_obs::EVENTS_SCHEMA) => return parse_events(text, label),
            Some(pandia_obs::METRICS_SCHEMA) => return parse_metrics(&meta, text, label),
            _ => {}
        }
    }
    parse_trace(text, label)
}

/// Reads and parses one capture file.
pub fn parse_capture_file(path: &std::path::Path) -> Result<Capture, String> {
    let label = path.display().to_string();
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {label}: {e}"))?;
    parse_capture(&text, &label)
}

/// Parses a `pandia-trace-v1` Chrome trace-event document.
pub fn parse_trace(text: &str, label: &str) -> Result<Capture, String> {
    let doc: Value =
        serde_json::from_str(text).map_err(|e| format!("{label}: invalid JSON: {e}"))?;
    if doc.as_object().is_none() {
        return Err(format!("{label}: not a JSON object"));
    }
    let other = field(&doc, "otherData");
    let schema = other
        .and_then(|o| field(o, "schema"))
        .and_then(Value::as_str)
        .unwrap_or("<missing>");
    if schema != pandia_obs::TRACE_SCHEMA {
        return Err(format!(
            "{label}: schema {schema:?}, expected {:?} (is this a --trace-out capture?)",
            pandia_obs::TRACE_SCHEMA
        ));
    }
    let events = field(&doc, "traceEvents")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{label}: missing traceEvents array"))?;
    let mut capture = Capture {
        label: label.to_string(),
        schema: schema.to_string(),
        recorded_spans: other
            .and_then(|o| field(o, "spans"))
            .and_then(as_u64)
            .unwrap_or(0),
        dropped_spans: other
            .and_then(|o| field(o, "dropped_spans"))
            .and_then(as_u64)
            .unwrap_or(0),
        ..Capture::default()
    };
    for event in events {
        match field(event, "ph").and_then(Value::as_str) {
            Some("X") => {
                let track = match field(event, "pid").and_then(as_u64) {
                    Some(1) => Track::Wall,
                    Some(2) => Track::Sim,
                    _ => continue,
                };
                let Some(seq) =
                    field(event, "args").and_then(|a| field(a, "seq")).and_then(as_u64)
                else {
                    continue;
                };
                capture.spans.push(CaptureSpan {
                    seq,
                    track,
                    tid: field(event, "tid").and_then(as_u64).unwrap_or(0) as u32,
                    cat: str_of(event, "cat").unwrap_or_else(|| "?".into()),
                    name: str_of(event, "name").unwrap_or_else(|| "?".into()),
                    ts_us: field(event, "ts").and_then(Value::as_f64).unwrap_or(0.0),
                    dur_us: field(event, "dur").and_then(Value::as_f64).unwrap_or(0.0),
                });
            }
            Some("C") => {
                if let (Some(name), Some(value)) = (
                    str_of(event, "name"),
                    field(event, "args").and_then(|a| field(a, "value")).and_then(as_u64),
                ) {
                    capture.counters.insert(name, value);
                }
            }
            _ => {}
        }
    }
    capture.spans.sort_by_key(|s| s.seq);
    Ok(capture)
}

/// Parses a `pandia-events-v1` JSONL stream.
fn parse_events(text: &str, label: &str) -> Result<Capture, String> {
    let mut capture = Capture {
        label: label.to_string(),
        schema: pandia_obs::EVENTS_SCHEMA.to_string(),
        ..Capture::default()
    };
    for (i, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("{label}:{}: invalid JSON: {e}", i + 1))?;
        match str_of(&value, "type").as_deref() {
            Some("span") => {
                let track = match str_of(&value, "track").as_deref() {
                    Some("sim") => Track::Sim,
                    _ => Track::Wall,
                };
                capture.spans.push(CaptureSpan {
                    seq: field(&value, "seq").and_then(as_u64).unwrap_or(0),
                    track,
                    tid: field(&value, "tid").and_then(as_u64).unwrap_or(0) as u32,
                    cat: str_of(&value, "cat").unwrap_or_else(|| "?".into()),
                    name: str_of(&value, "name").unwrap_or_else(|| "?".into()),
                    ts_us: field(&value, "ts_us").and_then(Value::as_f64).unwrap_or(0.0),
                    dur_us: field(&value, "dur_us").and_then(Value::as_f64).unwrap_or(0.0),
                });
            }
            Some("dropped") => {
                // Loss markers carry the cumulative drop count; the last
                // one wins.
                capture.dropped_spans =
                    field(&value, "count").and_then(as_u64).unwrap_or(0);
            }
            _ => {}
        }
    }
    capture.spans.sort_by_key(|s| s.seq);
    capture.recorded_spans = capture.spans.len() as u64;
    Ok(capture)
}

/// Parses a `pandia-metrics-v1` JSONL registry dump.
fn parse_metrics(meta: &Value, text: &str, label: &str) -> Result<Capture, String> {
    if let Some(bounds) = field(meta, "bucket_bounds").and_then(Value::as_array) {
        if bounds.len() != HISTOGRAM_BUCKET_BOUNDS.len() {
            return Err(format!(
                "{label}: {} bucket bounds, expected {} (incompatible metrics capture?)",
                bounds.len(),
                HISTOGRAM_BUCKET_BOUNDS.len()
            ));
        }
    }
    let mut capture = Capture {
        label: label.to_string(),
        schema: pandia_obs::METRICS_SCHEMA.to_string(),
        ..Capture::default()
    };
    for (i, line) in text.lines().enumerate().skip(1) {
        if line.trim().is_empty() {
            continue;
        }
        let value: Value = serde_json::from_str(line)
            .map_err(|e| format!("{label}:{}: invalid JSON: {e}", i + 1))?;
        match str_of(&value, "type").as_deref() {
            Some("counter") => {
                if let (Some(name), Some(v)) =
                    (str_of(&value, "name"), field(&value, "value").and_then(as_u64))
                {
                    capture.counters.insert(name, v);
                }
            }
            Some("gauge") => {
                if let (Some(name), Some(v)) =
                    (str_of(&value, "name"), field(&value, "value").and_then(Value::as_f64))
                {
                    capture.gauges.insert(name, v);
                }
            }
            Some("histogram") => {
                let (Some(name), Some(counts)) = (
                    str_of(&value, "name"),
                    field(&value, "counts").and_then(Value::as_array),
                ) else {
                    continue;
                };
                capture.histograms.insert(
                    name,
                    HistogramSnapshot {
                        count: field(&value, "count").and_then(as_u64).unwrap_or(0),
                        sum: field(&value, "sum").and_then(Value::as_f64).unwrap_or(0.0),
                        counts: counts.iter().map(|c| as_u64(c).unwrap_or(0)).collect(),
                    },
                );
            }
            Some("spans") => {
                capture.recorded_spans =
                    field(&value, "recorded").and_then(as_u64).unwrap_or(0);
                capture.dropped_spans =
                    field(&value, "dropped").and_then(as_u64).unwrap_or(0);
            }
            _ => {}
        }
    }
    Ok(capture)
}

// lint: allow-file(S2): tests synthesize captures through a local recorder, not the global one
#[cfg(test)]
mod tests {
    use super::*;
    use pandia_obs::Recorder;

    fn sample_recorder() -> Recorder {
        let r = Recorder::new();
        {
            let _outer = r.span("harness", "sweep");
            let _inner = r.span("sim", "run");
        }
        r.record_span_at(pandia_obs::SpanEvent {
            cat: "sim",
            name: "segment".into(),
            seq: 0,
            tid: 2,
            track: Track::Sim,
            ts_us: 10.0,
            dur_us: 250.0,
            args: vec![],
        });
        r.add("sim.segments", 3);
        r.gauge_set("exec.jobs", 2.0);
        r.observe("lat", 100.0);
        r
    }

    #[test]
    fn trace_documents_round_trip() {
        let r = sample_recorder();
        let capture = parse_capture(&r.chrome_trace_json(), "t").unwrap();
        assert_eq!(capture.schema, pandia_obs::TRACE_SCHEMA);
        assert_eq!(capture.spans.len(), 3);
        assert_eq!(capture.counters.get("sim.segments"), Some(&3));
        assert_eq!(capture.recorded_spans, 3);
        assert_eq!(capture.dropped_spans, 0);
        // Sorted by seq, tracks preserved.
        assert!(capture.spans.windows(2).all(|w| w[0].seq < w[1].seq));
        let sim = capture.spans.iter().find(|s| s.name == "segment").unwrap();
        assert_eq!(sim.track, Track::Sim);
        assert_eq!(sim.tid, 2);
        assert_eq!(sim.dur_us, 250.0);
        let wall = capture.spans.iter().find(|s| s.name == "sweep").unwrap();
        assert_eq!(wall.track, Track::Wall);
        assert_eq!(wall.phase(), "harness/sweep");
    }

    #[test]
    fn events_streams_round_trip_with_drop_markers() {
        let r = Recorder::with_max_events(2);
        for i in 0..4 {
            let _s = r.span("harness", &format!("s{i}"));
        }
        let capture = parse_capture(&r.events_jsonl(), "e").unwrap();
        assert_eq!(capture.schema, pandia_obs::EVENTS_SCHEMA);
        assert_eq!(capture.spans.len(), 2);
        assert_eq!(capture.dropped_spans, 2, "in-band drop marker must surface");
    }

    #[test]
    fn metrics_dumps_round_trip() {
        let r = sample_recorder();
        let capture = parse_capture(&r.metrics_jsonl(), "m").unwrap();
        assert_eq!(capture.schema, pandia_obs::METRICS_SCHEMA);
        assert!(capture.spans.is_empty());
        assert_eq!(capture.counters.get("sim.segments"), Some(&3));
        assert_eq!(capture.gauges.get("exec.jobs"), Some(&2.0));
        let hist = capture.histograms.get("lat").expect("histogram");
        assert_eq!(hist.count, 1);
        assert_eq!(hist.quantile(0.5), 128.0);
        assert_eq!(capture.recorded_spans, 3);
    }

    #[test]
    fn junk_inputs_error_with_the_label() {
        assert!(parse_capture("", "x").unwrap_err().contains("x"));
        assert!(parse_capture("not json", "x").unwrap_err().contains("x"));
        let err = parse_capture("{\"schema\":\"other-v9\"}", "x").unwrap_err();
        assert!(err.contains("expected"), "{err}");
    }
}
