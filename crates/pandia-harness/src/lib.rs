//! Evaluation harness: reproduces every figure and table of the paper.
//!
//! The harness glues together the ground-truth simulator, the workload
//! registry, and the Pandia library into the experiments of §6:
//!
//! * [`context::MachineContext`] — a simulated machine plus its generated
//!   machine description and a profiled description of every workload
//!   (the expensive artifacts, built once per machine).
//! * [`runner`] — measured-versus-predicted placement curves (Figures 1,
//!   10 and 13).
//! * [`metrics`] — the error and offset-error statistics of §6.1
//!   (Figures 11 and 12) and the best-placement gap.
//! * [`experiments`] — one driver per figure/table; each binary in
//!   `src/bin/` wraps one driver.
//! * [`report`] — plain-text tables and CSV emission under `results/`.
//! * [`traceio`] — parses the `pandia-trace-v1` / `-events-v1` /
//!   `-metrics-v1` capture formats back into one in-memory model.
//! * [`tracediff`] — span-by-span diffing of two `--trace-out` captures
//!   (the `trace_diff` binary), for catching wall-time regressions.
//! * [`attribution`] — phase-attribution analytics over captures (the
//!   `pandia-report` binary): inclusive/exclusive time, critical path,
//!   Amdahl what-if projections, multi-run noise flagging.

pub mod attribution;
pub mod context;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod tracediff;
pub mod traceio;

pub use attribution::{analyze_captures, AttributionReport};
pub use context::MachineContext;
pub use metrics::{best_placement_gap, error_stats, ErrorStats};
pub use runner::{measure_curve, CurvePoint, PlacementCurve};
pub use tracediff::{diff_trace_files, diff_traces, PhaseDelta, TraceDiff};
pub use traceio::{parse_capture, parse_capture_file, Capture, CaptureSpan};
