//! Evaluation harness: reproduces every figure and table of the paper.
//!
//! The harness glues together the ground-truth simulator, the workload
//! registry, and the Pandia library into the experiments of §6:
//!
//! * [`context::MachineContext`] — a simulated machine plus its generated
//!   machine description and a profiled description of every workload
//!   (the expensive artifacts, built once per machine).
//! * [`runner`] — measured-versus-predicted placement curves (Figures 1,
//!   10 and 13).
//! * [`metrics`] — the error and offset-error statistics of §6.1
//!   (Figures 11 and 12) and the best-placement gap.
//! * [`experiments`] — one driver per figure/table; each binary in
//!   `src/bin/` wraps one driver.
//! * [`report`] — plain-text tables and CSV emission under `results/`.
//! * [`tracediff`] — span-by-span diffing of two `--trace-out` captures
//!   (the `trace_diff` binary), for catching wall-time regressions.

pub mod context;
pub mod experiments;
pub mod metrics;
pub mod report;
pub mod runner;
pub mod tracediff;

pub use context::MachineContext;
pub use metrics::{best_placement_gap, error_stats, ErrorStats};
pub use runner::{measure_curve, CurvePoint, PlacementCurve};
pub use tracediff::{diff_trace_files, diff_traces, PhaseDelta, TraceDiff};
