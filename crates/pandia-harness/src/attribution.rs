//! Phase-attribution analytics over telemetry captures — the engine
//! behind the `pandia-report` binary.
//!
//! A Chrome-trace capture says *what happened*; this module says *where
//! the time went and what to fix next*:
//!
//! * **Inclusive vs exclusive attribution** — spans on each `(track,
//!   thread)` lane nest by interval containment into a span tree; a
//!   phase's *inclusive* time counts whole spans, its *exclusive* (self)
//!   time subtracts the spans nested inside. Exclusive times partition
//!   lane busy time exactly: summed over all phases of a track they equal
//!   the summed root-span durations, which is what makes the table an
//!   attribution rather than a list of overlapping totals.
//! * **Critical path** — worker spans recorded on their own thread lanes
//!   (e.g. `exec/worker` under `exec/parallel_map`) are adopted into the
//!   containing span of the spawning lane, and the path walks from the
//!   longest root to the last-finishing child at every level. Phases on
//!   this path bound end-to-end latency even at infinite parallelism.
//! * **Amdahl what-if projections** — for each phase with exclusive wall
//!   share `s`, the end-to-end speedup if only that phase were made `k`×
//!   faster is `1 / (1 - s + s/k)`, with ceiling `1 / (1 - s)` as
//!   `k → ∞`. Ranking phases by ceiling is the "where to optimize next"
//!   table.
//! * **Multi-run comparison** — given N captures of the same experiment,
//!   per-phase medians with MAD (median absolute deviation) flag phases
//!   whose wall time is too noisy to trust a single-run delta.
//!
//! Everything here is deterministic: spans are ordered by their logical
//! sequence numbers, aggregation uses `BTreeMap`, ties break by `seq`,
//! and no clocks are read — the same capture bytes always produce the
//! same report bytes.

use std::collections::BTreeMap;

use pandia_obs::Track;

use crate::traceio::{Capture, CaptureSpan};

/// Spans whose endpoints differ by less than this (µs) still count as
/// nested: wall timestamps of a child recorded "at the same time" as its
/// parent can exceed the parent's endpoint by scheduler jitter.
const NEST_EPS_US: f64 = 0.5;

/// Phases whose wall-time MAD exceeds this fraction of the median are
/// flagged as noisy in multi-run comparisons.
const NOISE_MAD_FRAC: f64 = 0.05;

/// How many top phases get Amdahl projections.
const AMDAHL_TOP: usize = 10;

/// Aggregated time of one phase (a `cat/name` identity) on one track.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseStat {
    /// Phase label, `cat/name`.
    pub phase: String,
    /// The timeline the spans live on.
    pub track: Track,
    /// Number of spans aggregated.
    pub spans: usize,
    /// Total span duration, microseconds (children double-counted).
    pub inclusive_us: f64,
    /// Total self time, microseconds (time not inside a nested span).
    pub exclusive_us: f64,
}

/// One step of the critical path, root first.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    /// Phase label of the span on the path.
    pub phase: String,
    /// The span's sequence number.
    pub seq: u64,
    /// Start timestamp, microseconds.
    pub ts_us: f64,
    /// Span duration, microseconds.
    pub dur_us: f64,
    /// Time attributable to this step alone: its duration minus the
    /// duration of the path child nested inside it.
    pub self_us: f64,
}

/// Amdahl projection for one phase.
#[derive(Debug, Clone, PartialEq)]
pub struct AmdahlRow {
    /// Phase label.
    pub phase: String,
    /// Exclusive wall time, microseconds.
    pub exclusive_us: f64,
    /// Exclusive share of total wall busy time, in [0, 1].
    pub share: f64,
    /// End-to-end speedup if this phase ran 2× faster.
    pub speedup_2x: f64,
    /// End-to-end speedup if this phase ran 4× faster.
    pub speedup_4x: f64,
    /// Speedup ceiling: this phase made free (k → ∞).
    pub ceiling: f64,
}

/// The full attribution of one capture.
#[derive(Debug, Clone, PartialEq)]
pub struct RunAttribution {
    /// Capture label (usually the file name).
    pub label: String,
    /// Total wall busy time: summed durations of the wall-track root
    /// spans across all lanes, microseconds. Exclusive times of wall
    /// phases sum to exactly this.
    pub wall_total_us: f64,
    /// Same total for the simulated-time track.
    pub sim_total_us: f64,
    /// Spans analyzed.
    pub spans: usize,
    /// Spans the recorder dropped before export — nonzero means every
    /// number in this attribution is a lower bound.
    pub dropped: u64,
    /// Per-phase attribution, wall track first, then sim, each sorted by
    /// descending exclusive time (ties by label).
    pub phases: Vec<PhaseStat>,
    /// Critical path through the wall span forest, root first.
    pub critical_path: Vec<CriticalStep>,
    /// Amdahl projections for the top wall phases by exclusive time,
    /// ranked by descending ceiling.
    pub amdahl: Vec<AmdahlRow>,
}

/// Per-phase stability across N runs.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseNoise {
    /// Phase label.
    pub phase: String,
    /// Runs the phase appeared in.
    pub runs: usize,
    /// Median exclusive wall time across runs, microseconds.
    pub median_us: f64,
    /// Median absolute deviation of exclusive wall time, microseconds.
    pub mad_us: f64,
    /// Whether the phase is too noisy for single-run deltas
    /// (MAD > 5% of median).
    pub noisy: bool,
}

/// The complete report: one attribution per capture plus, when several
/// captures were given, the cross-run stability table.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    /// One attribution per span-bearing capture, in input order.
    pub runs: Vec<RunAttribution>,
    /// Cross-run phase stability (empty with fewer than two runs).
    pub comparison: Vec<PhaseNoise>,
    /// Whether any input capture dropped spans.
    pub lossy: bool,
}

/// A node of the span forest.
struct Node {
    span: CaptureSpan,
    children: Vec<usize>,
    /// Children recorded on another lane (worker spans) adopted for
    /// critical-path purposes. Kept separate from `children` so exclusive
    /// attribution stays a per-lane partition: adopted spans overlap
    /// their adoptive parent in wall time and must not be subtracted.
    adopted: Vec<usize>,
    parent: Option<usize>,
    adoptive_parent: Option<usize>,
}

/// Builds the span forest of one track: per-lane nesting by containment,
/// plus cross-lane adoption of orphan roots into the containing span of
/// another lane. Returns the nodes and the indices of the per-lane roots
/// (spans with no same-lane parent).
fn build_forest(spans: &[CaptureSpan], track: Track) -> (Vec<Node>, Vec<usize>) {
    let mut nodes: Vec<Node> = spans
        .iter()
        .filter(|s| s.track == track)
        .cloned()
        .map(|span| Node { span, children: Vec::new(), adopted: Vec::new(), parent: None, adoptive_parent: None })
        .collect();

    // Group node indices per lane, in a deterministic lane order.
    let mut lanes: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, node) in nodes.iter().enumerate() {
        lanes.entry(node.span.tid).or_default().push(i);
    }

    let mut roots = Vec::new();
    for lane in lanes.values() {
        // Sort the lane by start time, longest-first on ties so parents
        // precede their children, then by seq for full determinism.
        let mut order = lane.clone();
        order.sort_by(|&a, &b| {
            let (sa, sb) = (&nodes[a].span, &nodes[b].span);
            sa.ts_us
                .total_cmp(&sb.ts_us)
                .then(sb.dur_us.total_cmp(&sa.dur_us))
                .then(sa.seq.cmp(&sb.seq))
        });
        let mut stack: Vec<usize> = Vec::new();
        for &i in &order {
            while let Some(&top) = stack.last() {
                if nodes[i].span.end_us() <= nodes[top].span.end_us() + NEST_EPS_US {
                    break;
                }
                stack.pop();
            }
            match stack.last() {
                Some(&top) => {
                    nodes[i].parent = Some(top);
                    nodes[top].children.push(i);
                }
                None => roots.push(i),
            }
            stack.push(i);
        }
    }

    // Cross-lane adoption: a lane root (e.g. an `exec/worker` span on its
    // worker thread's lane) whose interval sits inside a span of another
    // lane joins that span's subtree for critical-path purposes. The
    // deepest containing span wins; ties cannot arise because candidate
    // spans on one lane are nested.
    for &root in &roots {
        let (ts, end, lane) =
            (nodes[root].span.ts_us, nodes[root].span.end_us(), nodes[root].span.tid);
        let mut best: Option<usize> = None;
        for (j, node) in nodes.iter().enumerate() {
            if node.span.tid == lane {
                continue;
            }
            if node.span.ts_us <= ts + NEST_EPS_US && end <= node.span.end_us() + NEST_EPS_US {
                let tighter = match best {
                    None => true,
                    Some(b) => {
                        let cur = &nodes[b].span;
                        node.span.dur_us < cur.dur_us
                            || (node.span.dur_us == cur.dur_us && node.span.seq > cur.seq)
                    }
                };
                if tighter {
                    best = Some(j);
                }
            }
        }
        if let Some(j) = best {
            nodes[root].adoptive_parent = Some(j);
            nodes[j].adopted.push(root);
        }
    }

    (nodes, roots)
}

/// Per-phase inclusive/exclusive aggregation over one track's forest.
fn attribute(nodes: &[Node], track: Track) -> (Vec<PhaseStat>, f64) {
    let mut by_phase: BTreeMap<String, PhaseStat> = BTreeMap::new();
    let mut total = 0.0;
    for node in nodes {
        let nested: f64 = node.children.iter().map(|&c| nodes[c].span.dur_us).sum();
        let exclusive = (node.span.dur_us - nested).max(0.0);
        if node.parent.is_none() {
            total += node.span.dur_us;
        }
        let row = by_phase.entry(node.span.phase()).or_insert(PhaseStat {
            phase: node.span.phase(),
            track,
            spans: 0,
            inclusive_us: 0.0,
            exclusive_us: 0.0,
        });
        row.spans += 1;
        row.inclusive_us += node.span.dur_us;
        row.exclusive_us += exclusive;
    }
    let mut phases: Vec<PhaseStat> = by_phase.into_values().collect();
    phases.sort_by(|a, b| {
        b.exclusive_us.total_cmp(&a.exclusive_us).then(a.phase.cmp(&b.phase))
    });
    (phases, total)
}

/// Walks the critical path: from the longest root, always descend into
/// the last-finishing child (own-lane or adopted), ties broken by larger
/// sequence number.
fn critical_path(nodes: &[Node], roots: &[usize]) -> Vec<CriticalStep> {
    // True roots only: a lane root adopted into another lane's span is an
    // interior node of the walk, not a starting point.
    let start = roots
        .iter()
        .copied()
        .filter(|&r| nodes[r].adoptive_parent.is_none())
        .max_by(|&a, &b| {
            nodes[a]
                .span
                .dur_us
                .total_cmp(&nodes[b].span.dur_us)
                .then(nodes[a].span.seq.cmp(&nodes[b].span.seq))
        });
    let mut path = Vec::new();
    let mut cursor = start;
    while let Some(i) = cursor {
        let node = &nodes[i];
        let next = node
            .children
            .iter()
            .chain(node.adopted.iter())
            .copied()
            .max_by(|&a, &b| {
                nodes[a]
                    .span
                    .end_us()
                    .total_cmp(&nodes[b].span.end_us())
                    .then(nodes[a].span.seq.cmp(&nodes[b].span.seq))
            });
        let child_dur = next.map_or(0.0, |c| nodes[c].span.dur_us);
        path.push(CriticalStep {
            phase: node.span.phase(),
            seq: node.span.seq,
            ts_us: node.span.ts_us,
            dur_us: node.span.dur_us,
            self_us: (node.span.dur_us - child_dur).max(0.0),
        });
        cursor = next;
    }
    path
}

/// Amdahl projections for the top wall phases.
fn amdahl_rows(phases: &[PhaseStat], wall_total_us: f64) -> Vec<AmdahlRow> {
    if wall_total_us <= 0.0 {
        return Vec::new();
    }
    let speedup = |share: f64, k: f64| 1.0 / ((1.0 - share) + share / k);
    let mut rows: Vec<AmdahlRow> = phases
        .iter()
        .filter(|p| p.track == Track::Wall && p.exclusive_us > 0.0)
        .take(AMDAHL_TOP)
        .map(|p| {
            let share = (p.exclusive_us / wall_total_us).min(1.0);
            AmdahlRow {
                phase: p.phase.clone(),
                exclusive_us: p.exclusive_us,
                share,
                speedup_2x: speedup(share, 2.0),
                speedup_4x: speedup(share, 4.0),
                ceiling: if share >= 1.0 { f64::INFINITY } else { 1.0 / (1.0 - share) },
            }
        })
        .collect();
    rows.sort_by(|a, b| b.ceiling.total_cmp(&a.ceiling).then(a.phase.cmp(&b.phase)));
    rows
}

/// Attributes one capture.
pub fn analyze_capture(capture: &Capture) -> RunAttribution {
    let (wall_nodes, wall_roots) = build_forest(&capture.spans, Track::Wall);
    let (sim_nodes, _) = build_forest(&capture.spans, Track::Sim);
    let (mut phases, wall_total_us) = attribute(&wall_nodes, Track::Wall);
    let (sim_phases, sim_total_us) = attribute(&sim_nodes, Track::Sim);
    let amdahl = amdahl_rows(&phases, wall_total_us);
    let critical = critical_path(&wall_nodes, &wall_roots);
    phases.extend(sim_phases);
    RunAttribution {
        label: capture.label.clone(),
        wall_total_us,
        sim_total_us,
        spans: capture.spans.len(),
        dropped: capture.dropped_spans,
        phases,
        critical_path: critical,
        amdahl,
    }
}

/// Median of a slice (sorted in place); 0 for an empty slice.
fn median_of(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(f64::total_cmp);
    let mid = values.len() / 2;
    if values.len() % 2 == 1 {
        values[mid]
    } else {
        0.5 * (values[mid - 1] + values[mid])
    }
}

/// Cross-run stability of each wall phase's exclusive time.
fn compare_runs(runs: &[RunAttribution]) -> Vec<PhaseNoise> {
    if runs.len() < 2 {
        return Vec::new();
    }
    let mut samples: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for run in runs {
        for phase in run.phases.iter().filter(|p| p.track == Track::Wall) {
            samples.entry(&phase.phase).or_default().push(phase.exclusive_us);
        }
    }
    let mut rows: Vec<PhaseNoise> = samples
        .into_iter()
        .map(|(phase, mut values)| {
            let runs_seen = values.len();
            let median = median_of(&mut values);
            let mut deviations: Vec<f64> =
                values.iter().map(|v| (v - median).abs()).collect();
            let mad = median_of(&mut deviations);
            PhaseNoise {
                phase: phase.to_string(),
                runs: runs_seen,
                median_us: median,
                mad_us: mad,
                noisy: median > 0.0 && mad > NOISE_MAD_FRAC * median,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.median_us.total_cmp(&a.median_us).then(a.phase.cmp(&b.phase)));
    rows
}

/// Builds the full report over one or more parsed captures.
///
/// Captures without spans (pure metrics dumps) are rejected — they carry
/// nothing to attribute.
pub fn analyze_captures(captures: &[Capture]) -> Result<AttributionReport, String> {
    if captures.is_empty() {
        return Err("no captures to analyze".into());
    }
    for capture in captures {
        if capture.spans.is_empty() {
            return Err(format!(
                "{}: capture has no spans to attribute ({} carries only metrics)",
                capture.label, capture.schema
            ));
        }
    }
    let runs: Vec<RunAttribution> = captures.iter().map(analyze_capture).collect();
    let comparison = compare_runs(&runs);
    let lossy = runs.iter().any(|r| r.dropped > 0);
    Ok(AttributionReport { runs, comparison, lossy })
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn track_name(track: Track) -> &'static str {
    match track {
        Track::Wall => "wall",
        Track::Sim => "sim",
    }
}

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_json(&mut out, s);
    out.push('"');
    out
}

/// Finite ceilings render as numbers; the unbounded one as `null`.
fn json_ceiling(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".to_string()
    }
}

fn text_ceiling(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}x")
    } else {
        "inf".to_string()
    }
}

impl AttributionReport {
    /// The warning banner for lossy captures, if any input dropped spans.
    pub fn loss_warning(&self) -> Option<String> {
        if !self.lossy {
            return None;
        }
        let mut lines = vec![
            "WARNING: LOSSY CAPTURE — the span buffer overflowed while recording;".into(),
            "every time below is a LOWER BOUND, not a total. Re-capture with a".into(),
            "larger buffer (--trace-buffer) for exact attribution.".into(),
        ];
        for run in self.runs.iter().filter(|r| r.dropped > 0) {
            lines.push(format!("  {}: {} span(s) dropped", run.label, run.dropped));
        }
        Some(lines.join("\n"))
    }

    /// Renders the report as aligned plain text.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        if let Some(warning) = self.loss_warning() {
            out.push_str(&warning);
            out.push_str("\n\n");
        }
        for run in &self.runs {
            out.push_str(&format!(
                "== {} ==\nwall busy {:.3} ms over {} span(s); sim total {:.3} ms\n\n",
                run.label,
                run.wall_total_us / 1000.0,
                run.spans,
                run.sim_total_us / 1000.0,
            ));

            let width = run
                .phases
                .iter()
                .map(|p| p.phase.len())
                .chain(std::iter::once("phase".len()))
                .max()
                .unwrap_or(5);
            out.push_str(&format!(
                "{:<width$}  {:>5}  {:>6}  {:>14}  {:>14}  {:>6}\n",
                "phase", "track", "spans", "inclusive(ms)", "self(ms)", "self%"
            ));
            for p in &run.phases {
                let total = match p.track {
                    Track::Wall => run.wall_total_us,
                    Track::Sim => run.sim_total_us,
                };
                let share = if total > 0.0 { 100.0 * p.exclusive_us / total } else { 0.0 };
                out.push_str(&format!(
                    "{:<width$}  {:>5}  {:>6}  {:>14.3}  {:>14.3}  {:>5.1}%\n",
                    p.phase,
                    track_name(p.track),
                    p.spans,
                    p.inclusive_us / 1000.0,
                    p.exclusive_us / 1000.0,
                    share,
                ));
            }

            out.push_str("\ncritical path (wall):\n");
            for (depth, step) in run.critical_path.iter().enumerate() {
                out.push_str(&format!(
                    "{:indent$}{} {:.3} ms (self {:.3} ms, seq {})\n",
                    "",
                    step.phase,
                    step.dur_us / 1000.0,
                    step.self_us / 1000.0,
                    step.seq,
                    indent = 2 * depth,
                ));
            }

            out.push_str("\nwhere to optimize next (Amdahl, wall track):\n");
            let awidth = run
                .amdahl
                .iter()
                .map(|a| a.phase.len())
                .chain(std::iter::once("phase".len()))
                .max()
                .unwrap_or(5);
            out.push_str(&format!(
                "{:<awidth$}  {:>9}  {:>6}  {:>8}  {:>8}  {:>8}\n",
                "phase", "self(ms)", "share", "2x", "4x", "ceiling"
            ));
            for a in &run.amdahl {
                out.push_str(&format!(
                    "{:<awidth$}  {:>9.3}  {:>5.1}%  {:>7.3}x  {:>7.3}x  {:>8}\n",
                    a.phase,
                    a.exclusive_us / 1000.0,
                    100.0 * a.share,
                    a.speedup_2x,
                    a.speedup_4x,
                    text_ceiling(a.ceiling),
                ));
            }
            out.push('\n');
        }

        if !self.comparison.is_empty() {
            out.push_str(&format!(
                "== cross-run stability ({} runs, wall self time) ==\n",
                self.runs.len()
            ));
            let cwidth = self
                .comparison
                .iter()
                .map(|n| n.phase.len())
                .chain(std::iter::once("phase".len()))
                .max()
                .unwrap_or(5);
            out.push_str(&format!(
                "{:<cwidth$}  {:>4}  {:>12}  {:>10}  {:>5}\n",
                "phase", "runs", "median(ms)", "mad(ms)", "noisy"
            ));
            for n in &self.comparison {
                out.push_str(&format!(
                    "{:<cwidth$}  {:>4}  {:>12.3}  {:>10.3}  {:>5}\n",
                    n.phase,
                    n.runs,
                    n.median_us / 1000.0,
                    n.mad_us / 1000.0,
                    if n.noisy { "yes" } else { "no" },
                ));
            }
        }
        out
    }

    /// Renders the report as a `pandia-report-v1` JSON document.
    pub fn render_json(&self) -> String {
        let mut out = format!("{{\"schema\":\"{}\"", pandia_obs::schema::REPORT_SCHEMA);
        out.push_str(&format!(",\"lossy\":{}", self.lossy));
        out.push_str(",\"runs\":[");
        for (i, run) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":{},\"wall_total_us\":{:.3},\"sim_total_us\":{:.3},\"spans\":{},\"dropped\":{}",
                json_str(&run.label),
                run.wall_total_us,
                run.sim_total_us,
                run.spans,
                run.dropped,
            ));
            out.push_str(",\"phases\":[");
            for (j, p) in run.phases.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"phase\":{},\"track\":{},\"spans\":{},\"inclusive_us\":{:.3},\"exclusive_us\":{:.3}}}",
                    json_str(&p.phase),
                    json_str(track_name(p.track)),
                    p.spans,
                    p.inclusive_us,
                    p.exclusive_us,
                ));
            }
            out.push_str("],\"critical_path\":[");
            for (j, s) in run.critical_path.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"phase\":{},\"seq\":{},\"ts_us\":{:.3},\"dur_us\":{:.3},\"self_us\":{:.3}}}",
                    json_str(&s.phase),
                    s.seq,
                    s.ts_us,
                    s.dur_us,
                    s.self_us,
                ));
            }
            out.push_str("],\"amdahl\":[");
            for (j, a) in run.amdahl.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"phase\":{},\"exclusive_us\":{:.3},\"share\":{:.6},\"speedup_2x\":{:.4},\"speedup_4x\":{:.4},\"ceiling\":{}}}",
                    json_str(&a.phase),
                    a.exclusive_us,
                    a.share,
                    a.speedup_2x,
                    a.speedup_4x,
                    json_ceiling(a.ceiling),
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"comparison\":[");
        for (i, n) in self.comparison.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"phase\":{},\"runs\":{},\"median_us\":{:.3},\"mad_us\":{:.3},\"noisy\":{}}}",
                json_str(&n.phase),
                n.runs,
                n.median_us,
                n.mad_us,
                n.noisy,
            ));
        }
        out.push_str("]}");
        out.push('\n');
        out
    }

    /// Renders the per-phase table as CSV (one row per run × phase).
    pub fn render_csv(&self) -> String {
        let mut out =
            String::from("run,phase,track,spans,inclusive_us,exclusive_us,self_share\n");
        for run in &self.runs {
            for p in &run.phases {
                let total = match p.track {
                    Track::Wall => run.wall_total_us,
                    Track::Sim => run.sim_total_us,
                };
                let share = if total > 0.0 { p.exclusive_us / total } else { 0.0 };
                out.push_str(&format!(
                    "{},{},{},{},{:.3},{:.3},{:.6}\n",
                    run.label,
                    p.phase,
                    track_name(p.track),
                    p.spans,
                    p.inclusive_us,
                    p.exclusive_us,
                    share,
                ));
            }
        }
        out
    }
}

// lint: allow-file(S2): tests synthesize captures through a local recorder, not the global one
#[cfg(test)]
mod tests {
    use super::*;
    use crate::traceio::parse_capture;
    use pandia_obs::{Recorder, SpanEvent};

    fn span(seq: u64, tid: u32, cat: &'static str, name: &str, ts: f64, dur: f64) -> SpanEvent {
        SpanEvent {
            cat,
            name: name.to_string(),
            seq,
            tid,
            track: Track::Wall,
            ts_us: ts,
            dur_us: dur,
            args: vec![],
        }
    }

    fn capture_of(events: Vec<SpanEvent>) -> Capture {
        let r = Recorder::new();
        for e in events {
            r.record_span_at(e);
        }
        parse_capture(&r.chrome_trace_json(), "test").unwrap()
    }

    #[test]
    fn exclusive_times_partition_lane_busy_time() {
        // root [0,100] > a [10,40] > b [15,20]; sibling c [50,90].
        let capture = capture_of(vec![
            span(1, 1, "h", "root", 0.0, 100.0),
            span(2, 1, "h", "a", 10.0, 30.0),
            span(3, 1, "h", "b", 15.0, 5.0),
            span(4, 1, "h", "c", 50.0, 40.0),
        ]);
        let run = analyze_capture(&capture);
        assert_eq!(run.wall_total_us, 100.0);
        let get = |name: &str| {
            run.phases.iter().find(|p| p.phase == format!("h/{name}")).unwrap()
        };
        assert_eq!(get("root").inclusive_us, 100.0);
        assert_eq!(get("root").exclusive_us, 30.0); // 100 - 30 - 40
        assert_eq!(get("a").exclusive_us, 25.0); // 30 - 5
        assert_eq!(get("b").exclusive_us, 5.0);
        assert_eq!(get("c").exclusive_us, 40.0);
        let self_sum: f64 = run
            .phases
            .iter()
            .filter(|p| p.track == Track::Wall)
            .map(|p| p.exclusive_us)
            .sum();
        assert!((self_sum - run.wall_total_us).abs() < 1e-9);
    }

    #[test]
    fn critical_path_follows_last_finisher_across_lanes() {
        // Lane 1: root [0,100] > parallel_map [10,90].
        // Lane 2: worker [12,88] — adopted under parallel_map.
        // Lane 3: worker [11,59] — finishes earlier, not on the path.
        // (The recorder reassigns sequence numbers in recording order,
        // so the spans below get seqs 0..=3.)
        let capture = capture_of(vec![
            span(1, 1, "h", "root", 0.0, 100.0),
            span(2, 1, "exec", "parallel_map", 10.0, 80.0),
            span(3, 2, "exec", "worker", 12.0, 76.0),
            span(4, 3, "exec", "worker", 11.0, 48.0),
        ]);
        let run = analyze_capture(&capture);
        let path: Vec<(&str, u64)> =
            run.critical_path.iter().map(|s| (s.phase.as_str(), s.seq)).collect();
        assert_eq!(
            path,
            vec![("h/root", 0), ("exec/parallel_map", 1), ("exec/worker", 2)]
        );
        // Adoption must not distort attribution: workers keep their own
        // lane's busy time.
        assert_eq!(run.wall_total_us, 100.0 + 76.0 + 48.0);
        let pm = run.phases.iter().find(|p| p.phase == "exec/parallel_map").unwrap();
        assert_eq!(pm.exclusive_us, 80.0, "adopted spans are not subtracted");
    }

    #[test]
    fn amdahl_ranks_the_dominant_phase_first() {
        let capture = capture_of(vec![
            span(1, 1, "h", "root", 0.0, 100.0),
            span(2, 1, "sim", "run", 0.0, 75.0), // dominant: 75% share
            span(3, 1, "h", "report", 80.0, 10.0),
        ]);
        let run = analyze_capture(&capture);
        assert_eq!(run.amdahl[0].phase, "sim/run");
        assert!((run.amdahl[0].share - 0.75).abs() < 1e-9);
        assert!((run.amdahl[0].ceiling - 4.0).abs() < 1e-9);
        assert!((run.amdahl[0].speedup_2x - 1.0 / (0.25 + 0.375)).abs() < 1e-9);
        // Ceiling ordering holds across rows.
        assert!(run.amdahl.windows(2).all(|w| w[0].ceiling >= w[1].ceiling));
    }

    #[test]
    fn multi_run_comparison_flags_noisy_phases() {
        let runs: Vec<Capture> = [(100.0, 10.0), (104.0, 40.0), (96.0, 70.0)]
            .iter()
            .map(|&(stable, jittery)| {
                capture_of(vec![
                    span(1, 1, "h", "stable", 0.0, stable),
                    span(2, 1, "h", "jittery", 200.0, jittery),
                ])
            })
            .collect();
        let report = analyze_captures(&runs).unwrap();
        assert_eq!(report.comparison.len(), 2);
        let jittery =
            report.comparison.iter().find(|n| n.phase == "h/jittery").unwrap();
        assert!(jittery.noisy, "MAD 30/median 40 must flag as noisy");
        let stable = report.comparison.iter().find(|n| n.phase == "h/stable").unwrap();
        assert!(!stable.noisy, "MAD 4/median 100 is within tolerance");
        assert_eq!(stable.median_us, 100.0);
        assert_eq!(stable.mad_us, 4.0);
    }

    #[test]
    fn lossy_captures_carry_a_loud_warning() {
        let mut capture = capture_of(vec![span(1, 1, "h", "root", 0.0, 100.0)]);
        capture.dropped_spans = 7;
        let report = analyze_captures(&[capture]).unwrap();
        assert!(report.lossy);
        let warning = report.loss_warning().unwrap();
        assert!(warning.contains("LOSSY"));
        assert!(warning.contains("7 span(s) dropped"));
        assert!(report.render_text().starts_with("WARNING"));
        assert!(report.render_json().contains("\"lossy\":true"));
    }

    #[test]
    fn renders_are_deterministic_and_schema_tagged() {
        let capture = capture_of(vec![
            span(1, 1, "h", "root", 0.0, 100.0),
            span(2, 1, "sim", "run", 5.0, 60.0),
        ]);
        let report = analyze_captures(std::slice::from_ref(&capture)).unwrap();
        let again = analyze_captures(&[capture]).unwrap();
        assert_eq!(report.render_text(), again.render_text());
        assert_eq!(report.render_json(), again.render_json());
        assert_eq!(report.render_csv(), again.render_csv());
        let json: serde_json::Value = serde_json::from_str(&report.render_json()).unwrap();
        let schema = crate::traceio::field(&json, "schema");
        assert_eq!(schema.and_then(serde_json::Value::as_str), Some("pandia-report-v1"));
    }

    #[test]
    fn metrics_only_captures_are_rejected() {
        let r = Recorder::new();
        r.add("x", 1);
        let capture = parse_capture(&r.metrics_jsonl(), "m").unwrap();
        let err = analyze_captures(&[capture]).unwrap_err();
        assert!(err.contains("no spans"), "{err}");
    }
}
