//! Diffing two Chrome-trace captures of the same experiment.
//!
//! Span sequence numbers are stable across runs of the same experiment
//! (they count spans in logical creation order), so two `--trace-out`
//! captures taken at different commits can be paired span-by-span and
//! aggregated into per-phase wall-time deltas. This is the perf-regression
//! view the telemetry layer was built for: a regression shows up as a
//! positive delta on the phase that slowed down, in review rather than
//! after merge.
//!
//! Only wall-clock spans (Chrome trace `pid` 1) participate; the pid-2
//! simulated-time track describes the modeled machine, not harness
//! performance. Spans are paired by `(seq, cat, name)` — a sequence
//! number whose identity changed between captures means the two runs
//! diverged structurally and the span is reported as unmatched instead
//! of being compared.

use std::collections::BTreeMap;

use crate::traceio::{self, CaptureSpan};
use pandia_obs::Track;

/// Aggregated wall time of one phase (a `cat/name` span identity) across
/// both captures.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseDelta {
    /// Phase label, `cat/name`.
    pub phase: String,
    /// Matched span pairs aggregated into this row.
    pub spans: usize,
    /// Total wall time in the baseline capture, microseconds.
    pub base_us: f64,
    /// Total wall time in the candidate capture, microseconds.
    pub cand_us: f64,
}

impl PhaseDelta {
    /// Absolute wall-time delta (candidate minus baseline), microseconds.
    pub fn delta_us(&self) -> f64 {
        self.cand_us - self.base_us
    }

    /// Relative delta in percent of the baseline. A phase with no
    /// measurable baseline time reports zero rather than an infinity.
    pub fn delta_pct(&self) -> f64 {
        if self.base_us > 0.0 {
            100.0 * (self.cand_us - self.base_us) / self.base_us
        } else {
            0.0
        }
    }
}

/// The result of diffing two captures.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDiff {
    /// Per-phase aggregates, in phase-label order.
    pub phases: Vec<PhaseDelta>,
    /// Span pairs matched by `(seq, cat, name)`.
    pub matched: usize,
    /// Spans present only in the baseline capture (or whose identity
    /// changed).
    pub only_base: usize,
    /// Spans present only in the candidate capture (or whose identity
    /// changed).
    pub only_cand: usize,
}

impl TraceDiff {
    /// The largest per-phase slowdown in percent, zero when every phase
    /// held steady or improved.
    pub fn worst_regression_pct(&self) -> f64 {
        self.worst_regression_pct_above(0.0)
    }

    /// Like [`worst_regression_pct`](Self::worst_regression_pct), but
    /// ignores phases whose baseline total is below `min_us`
    /// microseconds. One-span phases jitter by hundreds of percent
    /// between identical runs; a mass floor keeps a CI gate on the
    /// phases where a relative delta is signal rather than noise.
    pub fn worst_regression_pct_above(&self, min_us: f64) -> f64 {
        self.phases
            .iter()
            .filter(|p| p.base_us >= min_us)
            .map(PhaseDelta::delta_pct)
            .fold(0.0, f64::max)
    }

    /// Renders the diff as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self
            .phases
            .iter()
            .map(|p| p.phase.len())
            .chain(std::iter::once("phase".len()))
            .max()
            .unwrap_or(5);
        out.push_str(&format!(
            "{:<width$}  {:>6}  {:>14}  {:>14}  {:>12}  {:>8}\n",
            "phase", "spans", "baseline(ms)", "candidate(ms)", "delta(ms)", "delta%"
        ));
        for p in &self.phases {
            out.push_str(&format!(
                "{:<width$}  {:>6}  {:>14.3}  {:>14.3}  {:>+12.3}  {:>+7.1}%\n",
                p.phase,
                p.spans,
                p.base_us / 1000.0,
                p.cand_us / 1000.0,
                p.delta_us() / 1000.0,
                p.delta_pct(),
            ));
        }
        out.push_str(&format!(
            "matched {} span pair(s); {} only in baseline; {} only in candidate\n",
            self.matched, self.only_base, self.only_cand
        ));
        out
    }
}

/// Extracts the wall-clock spans of a capture, keyed by sequence number.
fn wall_spans(text: &str, label: &str) -> Result<BTreeMap<u64, CaptureSpan>, String> {
    let capture = traceio::parse_trace(text, label)?;
    Ok(capture
        .spans
        .into_iter()
        .filter(|s| s.track == Track::Wall)
        .map(|s| (s.seq, s))
        .collect())
}

/// Diffs two `--trace-out` captures (raw JSON document strings) of the
/// same experiment.
pub fn diff_traces(baseline: &str, candidate: &str) -> Result<TraceDiff, String> {
    let base = wall_spans(baseline, "baseline")?;
    let cand = wall_spans(candidate, "candidate")?;

    let mut phases: BTreeMap<String, PhaseDelta> = BTreeMap::new();
    let mut matched = 0;
    let mut only_base = 0;
    for (seq, b) in &base {
        match cand.get(seq) {
            Some(c) if c.cat == b.cat && c.name == b.name => {
                matched += 1;
                let label = format!("{}/{}", b.cat, b.name);
                let row = phases.entry(label.clone()).or_insert(PhaseDelta {
                    phase: label,
                    spans: 0,
                    base_us: 0.0,
                    cand_us: 0.0,
                });
                row.spans += 1;
                row.base_us += b.dur_us;
                row.cand_us += c.dur_us;
            }
            _ => only_base += 1,
        }
    }
    let only_cand = cand
        .iter()
        .filter(|(seq, c)| {
            base.get(seq).is_none_or(|b| b.cat != c.cat || b.name != c.name)
        })
        .count();
    Ok(TraceDiff { phases: phases.into_values().collect(), matched, only_base, only_cand })
}

/// Reads and diffs two capture files.
pub fn diff_trace_files(
    baseline: &std::path::Path,
    candidate: &std::path::Path,
) -> Result<TraceDiff, String> {
    let base = std::fs::read_to_string(baseline)
        .map_err(|e| format!("cannot read {}: {e}", baseline.display()))?;
    let cand = std::fs::read_to_string(candidate)
        .map_err(|e| format!("cannot read {}: {e}", candidate.display()))?;
    diff_traces(&base, &cand)
}
