//! Figure 10: measured vs predicted performance for every workload on the
//! X5-2 (Figure 1 covers MD; this binary regenerates all 22 curves).
//!
//! `cargo run --release -p pandia-harness --bin fig10_curves [--quick] [machine]`

use pandia_harness::{
    experiments::{curves, runnable_workloads, Coverage},
    metrics, report, MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let coverage = Coverage::from_args();
    let machine = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "x5-2".into());
    let mut ctx = MachineContext::by_name(&machine)?;
    let placements = coverage.placements(&ctx);
    let workloads = runnable_workloads(&ctx, pandia_workloads::paper_suite());
    eprintln!(
        "{} workloads on {} over {} placements",
        workloads.len(),
        ctx.description.machine,
        placements.len()
    );

    let mut all_stats = Vec::new();
    for w in &workloads {
        let curve = curves::workload_curve(&mut ctx, w, &placements)?;
        let stats = metrics::error_stats(&curve);
        println!(
            "{:<10} mean {:>6.2}%  median {:>6.2}%  gap {:>6.2}%",
            w.name,
            stats.mean_error_pct,
            stats.median_error_pct,
            metrics::best_placement_gap(&curve)
        );
        report::write_result(
            &format!("fig10/{}_{}.csv", machine, w.name),
            &report::curve_csv(&curve),
        )?;
        all_stats.push(stats);
    }
    let table = report::error_table(
        &format!("Figure 10 curves on {}", ctx.description.machine),
        &all_stats,
    );
    let path = report::write_result(&format!("fig10/{machine}_errors.txt"), &table)?;
    eprintln!("wrote {} and per-workload CSVs", path.display());
    Ok(())
}
