//! Figure 10: measured vs predicted performance for every workload on the
//! X5-2 (Figure 1 covers MD; this binary regenerates all 22 curves).
//!
//! `cargo run --release -p pandia-harness --bin fig10_curves [--quick]
//! [--jobs N] [--no-cache] [--naive-sim] [machine]`
//!
//! With `--events-out FILE` the span-event stream is appended after each
//! workload, so a long sweep is watchable in flight (`tail -f`); pair a
//! full-coverage `--trace-out` capture with `--trace-buffer SPANS` when
//! the sweep records more than the default 2^18 spans.
//!
//! `--naive-sim` disables the simulator's incremental fast path (solve
//! reuse + steady-segment coalescing) so CI can assert both engine paths
//! emit byte-identical results. `--legacy-soa` likewise falls back to the
//! per-entity-struct segment walk so the structure-of-arrays hot path can
//! be `cmp`'d against its reference on the full sweep.

use std::time::Instant;

use pandia_harness::{
    experiments::{
        curves, exec_from_args, positional_args, quiet_from_args, report_exec,
        runnable_workloads, telemetry_from_args, Coverage,
    },
    metrics, report, MachineContext,
};
use pandia_sim::{SimConfig, SimMachine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let coverage = Coverage::from_args();
    let exec = exec_from_args();
    let naive = std::env::args().any(|a| a == "--naive-sim");
    let legacy_soa = std::env::args().any(|a| a == "--legacy-soa");
    let machine = positional_args().into_iter().next().unwrap_or_else(|| "x5-2".into());
    let mut ctx = MachineContext::by_name(&machine)?;
    if naive || legacy_soa {
        let mut config = SimConfig::default();
        if naive {
            config = config.with_incremental(false);
        }
        if legacy_soa {
            config = config.with_soa(false);
        }
        ctx.platform = SimMachine::with_config(ctx.spec.clone(), config);
    }
    let placements = coverage.placements(&ctx);
    let workloads = runnable_workloads(&ctx, pandia_workloads::paper_suite());
    if !quiet {
        eprintln!(
            "{} workloads on {} over {} placements (jobs={})",
            workloads.len(),
            ctx.description.machine,
            placements.len(),
            exec.jobs()
        );
    }

    let start = Instant::now();
    let mut all_stats = Vec::new();
    for w in &workloads {
        let curve = curves::workload_curve_with(&exec, &ctx, w, &placements)?;
        let stats = metrics::error_stats(&curve);
        println!(
            "{:<10} mean {:>6.2}%  median {:>6.2}%  gap {:>6.2}%",
            w.name,
            stats.mean_error_pct,
            stats.median_error_pct,
            metrics::best_placement_gap(&curve)
        );
        report::write_result(
            &format!("fig10/{}_{}.csv", machine, w.name),
            &report::curve_csv(&curve),
        )?;
        all_stats.push(stats);
        // Keep the --events-out stream current so a long sweep can be
        // watched in flight, one workload at a time.
        telemetry.poll_events();
    }
    report_exec(&exec, "curves", start, quiet);
    let table = report::error_table(
        &format!("Figure 10 curves on {}", ctx.description.machine),
        &all_stats,
    );
    let path = report::write_result(&format!("fig10/{machine}_errors.txt"), &table)?;
    if !quiet {
        eprintln!("wrote {} and per-workload CSVs", path.display());
    }
    Ok(())
}
