//! Figure 13: the single-threaded NPO join (no scaling) and equake
//! (growing total work) on the X3-2 and X5-2.
//!
//! `cargo run --release -p pandia-harness --bin fig13_limits [--quick]`

use pandia_harness::{
    experiments::{limits, telemetry_from_args, Coverage},
    metrics, report,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let coverage = Coverage::from_args();
    let result = limits::run(coverage)?;

    println!(
        "13a  NPO single-threaded on X3-2: fitted parallel fraction {:.4} (no scaling detected)",
        result.npo_single_parallel_fraction
    );
    for (label, curve, file) in [
        ("13a NPO-1T/X3-2", &result.npo_single, "fig13a_npo1t_x3-2.csv"),
        ("13b equake/X3-2", &result.equake_x3, "fig13b_equake_x3-2.csv"),
        ("13c equake/X5-2", &result.equake_x5, "fig13c_equake_x5-2.csv"),
    ] {
        let stats = metrics::error_stats(curve);
        println!(
            "{label}: mean error {:.2}%, median {:.2}% over {} placements",
            stats.mean_error_pct, stats.median_error_pct, stats.placements
        );
        println!("{}", report::ascii_curve(curve, 100, 16));
        report::write_result(&format!("fig13/{file}"), &report::curve_csv(curve))?;
    }
    let eq_small = metrics::error_stats(&result.equake_x3).mean_error_pct;
    let eq_large = metrics::error_stats(&result.equake_x5).mean_error_pct;
    println!(
        "equake violates the fixed-work assumption: mean error grows from {eq_small:.1}% \
         (16-core X3-2) to {eq_large:.1}% (36-core X5-2)"
    );
    Ok(())
}
