//! Figure 14: Turbo Boost's effect on the instruction rate of a CPU-bound
//! loop as threads are added (X5-2 / Xeon E5-2699 v3 by default).
//!
//! `cargo run --release -p pandia-harness --bin fig14_turbo [machine]`

use pandia_harness::{
    experiments::{quiet_from_args, telemetry_from_args, turbo},
    report, MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let machine = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "x5-2".into());
    let mut ctx = MachineContext::by_name(&machine)?;
    let result = turbo::run(&mut ctx)?;

    let cores = ctx.description.shape.total_cores();
    println!("Figure 14 on {} (instructions per unit time)", result.machine);
    println!("{:>7} {:>16} {:>16} {:>16}", "threads", "boost", "boost+bg", "no boost");
    let total = result.series[0].instr_rate.len();
    for n in (0..total).step_by((total / 18).max(1)) {
        println!(
            "{:>7} {:>16.1} {:>16.1} {:>16.1}{}",
            n + 1,
            result.series[0].instr_rate[n],
            result.series[1].instr_rate[n],
            result.series[2].instr_rate[n],
            if n + 1 == cores { "   <- all cores busy, SMT slots follow" } else { "" }
        );
    }
    let path = report::write_result("fig14_turbo.csv", &turbo::csv(&result))?;
    if !quiet {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
