//! Figure 12: mean prediction errors on the four-socket Westmere X2-4,
//! split into the 2-socket / 20-core / whole-machine placement classes.
//!
//! `cargo run --release -p pandia-harness --bin fig12_foursocket [--quick]`

use pandia_harness::{
    experiments::{four_socket, quiet_from_args, telemetry_from_args, Coverage},
    report, MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let coverage = Coverage::from_args();
    let mut ctx = MachineContext::x2_4()?;
    if !quiet {
        eprintln!("running Figure 12 on {}", ctx.description.machine);
    }
    let result = four_socket::run(&mut ctx, coverage)?;
    let text = four_socket::render(&result);
    print!("{text}");
    let path = report::write_result("fig12_foursocket.txt", &text)?;
    if !quiet {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
