//! §6.3 "Simple pattern exploration": the packed/spread sweep baseline,
//! its machine-time cost relative to Pandia's profiling, and how often it
//! finds the best placement.
//!
//! `cargo run --release -p pandia-harness --bin sweep_baseline [--quick] [machine]`

use pandia_harness::{
    experiments::{quiet_from_args, sweep, telemetry_from_args, Coverage},
    report, MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let coverage = Coverage::from_args();
    let machine = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "x5-2".into());
    let mut ctx = MachineContext::by_name(&machine)?;
    let result = sweep::run(&mut ctx, coverage)?;
    let text = sweep::render(&result);
    print!("{text}");
    let path = report::write_result(&format!("sweep_{machine}.txt"), &text)?;
    if !quiet {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
