//! Validates the §8 co-scheduling extension: joint predictions vs joint
//! measurements for workload pairs under several machine carve-ups.
//!
//! `cargo run --release -p pandia-harness --bin coschedule_validation [machine]`

use pandia_harness::{
    experiments::{coschedule_validation, quiet_from_args, telemetry_from_args},
    report, MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let machine = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "x4-2".into());
    let mut ctx = MachineContext::by_name(&machine)?;
    let pairs = [
        ("CG", "EP"),
        ("Swim", "EP"),
        ("CG", "Swim"),
        ("MD", "PageRank"),
        ("IS", "BT"),
        ("FT", "Wupwise"),
    ];
    let result = coschedule_validation::run(&mut ctx, &pairs)?;
    let text = coschedule_validation::render(&result);
    print!("{text}");
    let path = report::write_result(&format!("coschedule_{machine}.txt"), &text)?;
    if !quiet {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
