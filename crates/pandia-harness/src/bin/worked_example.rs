//! Reproduces the paper's worked example (Figures 3-9).

use pandia_harness::experiments::worked_example;
use pandia_harness::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let example = worked_example::run()?;
    let text = worked_example::render(&example);
    print!("{text}");
    let path = report::write_result("worked_example.txt", &text)?;
    eprintln!("wrote {}", path.display());
    Ok(())
}
