//! Reproduces the paper's worked example (Figures 3-9).

use pandia_harness::experiments::{quiet_from_args, telemetry_from_args, worked_example};
use pandia_harness::report;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let example = worked_example::run()?;
    let text = worked_example::render(&example);
    print!("{text}");
    let path = report::write_result("worked_example.txt", &text)?;
    if !quiet {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
