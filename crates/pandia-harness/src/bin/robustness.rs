//! Robustness over random synthetic workloads (beyond the paper):
//! `cargo run --release -p pandia-harness --bin robustness [machine] [per-archetype]`

use pandia_harness::{
    experiments::{quiet_from_args, robustness, telemetry_from_args, Coverage},
    report, MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let machine = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "x4-2".into());
    let per_archetype: usize = std::env::args()
        .skip(2)
        .find(|a| !a.starts_with('-'))
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let mut ctx = MachineContext::by_name(&machine)?;
    let result = robustness::run(&mut ctx, Coverage::from_args(), per_archetype, 0x5EED)?;
    let text = robustness::render(&result);
    print!("{text}");
    let path = report::write_result(&format!("robustness_{machine}.txt"), &text)?;
    if !quiet {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
