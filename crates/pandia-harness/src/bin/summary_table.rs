//! §6.1 headline statistics: best-placement gaps, median errors and the
//! peak-thread-count observation across the two-socket machines.
//!
//! `cargo run --release -p pandia-harness --bin summary_table [--quick]`

use pandia_harness::{
    experiments::{quiet_from_args, summary, telemetry_from_args, Coverage},
    report, MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let coverage = Coverage::from_args();
    let mut summaries = Vec::new();
    let mut peaks_text = String::new();
    for name in ["x5-2", "x4-2", "x3-2"] {
        let mut ctx = MachineContext::by_name(name)?;
        if !quiet {
            eprintln!("evaluating {}", ctx.description.machine);
        }
        let result = summary::evaluate_machine(&mut ctx, coverage)?;
        let max_threads = ctx.description.shape.total_contexts();
        let peaks = summary::peak_threads(&result, max_threads);
        use std::fmt::Write as _;
        let _ = writeln!(peaks_text, "\n{} (max {} threads):", ctx.description.machine, max_threads);
        for (workload, best, _) in &peaks {
            let _ = writeln!(
                peaks_text,
                "  {workload:<10} peak at {best:>3} threads{}",
                if *best < max_threads { "  (below max)" } else { "" }
            );
        }
        summaries.push(result.summary);
    }
    let table = report::summary_table(&summaries);
    println!("{table}");
    println!("{peaks_text}");
    report::write_result("summary.txt", &format!("{table}\n{peaks_text}"))?;
    Ok(())
}
