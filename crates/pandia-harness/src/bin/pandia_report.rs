//! Phase-attribution report over one or more telemetry captures.
//!
//! `cargo run --release -p pandia-harness --bin pandia_report -- \
//!     CAPTURE... [--json FILE] [--csv FILE] [--out FILE]`
//!
//! Each `CAPTURE` is a `--trace-out` Chrome-trace document or an
//! `--events-out` JSONL stream (the format is sniffed). One capture
//! yields the attribution tables — per-phase inclusive/exclusive time,
//! the critical path, and the Amdahl "where to optimize next" ranking;
//! several captures additionally yield the cross-run median+MAD
//! stability table (see `pandia_harness::attribution`).
//!
//! The aligned text report goes to stdout (or `--out FILE`); `--json`
//! and `--csv` write the machine-readable forms (`pandia-report-v1`).
//! Captures that dropped spans produce a loud warning on stderr as well
//! as in the report body.
//!
//! Exit codes: 0 = report produced, 2 = usage or input error.

use std::path::PathBuf;
use std::process::ExitCode;

use pandia_harness::{analyze_captures, traceio};

struct Options {
    captures: Vec<PathBuf>,
    json: Option<PathBuf>,
    csv: Option<PathBuf>,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts =
        Options { captures: Vec::new(), json: None, csv: None, out: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut path_flag = |name: &str| {
            args.next().map(PathBuf::from).ok_or_else(|| format!("{name} requires a path"))
        };
        match arg.as_str() {
            "--json" => opts.json = Some(path_flag("--json")?),
            "--csv" => opts.csv = Some(path_flag("--csv")?),
            "--out" => opts.out = Some(path_flag("--out")?),
            _ if arg.starts_with('-') => return Err(format!("unknown flag {arg}")),
            _ => opts.captures.push(PathBuf::from(arg)),
        }
    }
    if opts.captures.is_empty() {
        return Err(
            "usage: pandia_report CAPTURE... [--json FILE] [--csv FILE] [--out FILE]".into(),
        );
    }
    Ok(opts)
}

fn run(opts: &Options) -> Result<(), String> {
    let captures = opts
        .captures
        .iter()
        .map(|p| traceio::parse_capture_file(p))
        .collect::<Result<Vec<_>, _>>()?;
    let report = analyze_captures(&captures)?;
    if let Some(warning) = report.loss_warning() {
        eprintln!("{warning}");
    }
    let text = report.render_text();
    match &opts.out {
        Some(path) => std::fs::write(path, &text)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?,
        None => print!("{text}"),
    }
    if let Some(path) = &opts.json {
        std::fs::write(path, report.render_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    if let Some(path) = &opts.csv {
        std::fs::write(path, report.render_csv())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("pandia_report: {e}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pandia_report: {e}");
            ExitCode::from(2)
        }
    }
}
