//! Figure 15 (beyond the paper): profiling accuracy under fault
//! injection, naive vs. robust measurement pipelines.
//!
//! `cargo run --release -p pandia-harness --bin fig15_chaos [--quick]
//! [--jobs N] [--no-cache] [machine] [trials]`

use std::time::Instant;

use pandia_harness::{
    experiments::{
        chaos, exec_from_args, positional_args, quiet_from_args, report_exec,
        telemetry_from_args, Coverage,
    },
    report, MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let coverage = Coverage::from_args();
    let exec = exec_from_args();
    let positional = positional_args();
    let machine = positional.first().cloned().unwrap_or_else(|| "x3-2".into());
    let trials: usize =
        positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(3).max(1);
    let mut ctx = MachineContext::by_name(&machine)?;
    if !quiet {
        eprintln!(
            "chaos sweep on {}: {} intensities × 2 policies, {} trials each (jobs={})",
            ctx.description.machine,
            chaos::INTENSITIES.len(),
            trials,
            exec.jobs()
        );
    }

    let start = Instant::now();
    let result = chaos::run(&exec, &mut ctx, coverage, trials, 0xC4A0)?;
    report_exec(&exec, "chaos", start, quiet);

    let text = chaos::render(&result);
    print!("{text}");
    report::write_result(&format!("fig15/{machine}_chaos.csv"), &chaos::to_csv(&result))?;
    let path = report::write_result(&format!("fig15/{machine}_chaos.txt"), &text)?;
    if !quiet {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
