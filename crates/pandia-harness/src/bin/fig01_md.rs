//! Figure 1: measured vs predicted performance for MD on the X5-2 across
//! the placement space.
//!
//! `cargo run --release -p pandia-harness --bin fig01_md [--quick]
//! [--jobs N] [--no-cache]`

use pandia_harness::{
    experiments::{curves, exec_from_args, quiet_from_args, telemetry_from_args, Coverage},
    metrics, report, MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let coverage = Coverage::from_args();
    let exec = exec_from_args();
    let ctx = MachineContext::x5_2()?;
    let placements = coverage.placements(&ctx);
    if !quiet {
        eprintln!(
            "MD on {} over {} placements (jobs={})",
            ctx.description.machine,
            placements.len(),
            exec.jobs()
        );
    }
    let md = pandia_workloads::by_name("MD").expect("MD registered");
    let curve = curves::workload_curve_with(&exec, &ctx, &md, &placements)?;

    let stats = metrics::error_stats(&curve);
    let gap = metrics::best_placement_gap(&curve);
    println!("{}", report::ascii_curve(&curve, 100, 24));
    println!(
        "MD: mean error {:.2}%, median {:.2}%, offset median {:.2}%, best-placement gap {:.2}%",
        stats.mean_error_pct, stats.median_error_pct, stats.median_offset_error_pct, gap
    );
    let path = report::write_result("fig01_md.csv", &report::curve_csv(&curve))?;
    if !quiet {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
