//! Figure 16 (beyond the paper): the placement service under load —
//! per-event latency and solve counts, incremental vs. batch, vs.
//! stream length.
//!
//! `cargo run --release -p pandia-harness --bin fig16_service [--quick]
//! [--jobs N] [--no-cache] [machines] [seed]`

use std::time::Instant;

use pandia_harness::{
    experiments::{
        exec_from_args, positional_args, quiet_from_args, report_exec, service,
        telemetry_from_args, Coverage,
    },
    report,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let exec = exec_from_args();
    let positional = positional_args();
    let machines: usize = positional.first().and_then(|s| s.parse().ok()).unwrap_or(4).max(1);
    let seed: u64 = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(0xF16);
    let counts: &[usize] = match Coverage::from_args() {
        Coverage::Quick => &[100, 250],
        Coverage::Paper => &service::EVENT_COUNTS,
    };
    if !quiet {
        eprintln!(
            "service load sweep: {} synthetic machines, streams {:?}, 2 modes (jobs={})",
            machines,
            counts,
            exec.jobs()
        );
    }

    let start = Instant::now();
    let result = service::run(&exec, machines, counts, seed)?;
    report_exec(&exec, "service", start, quiet);

    let text = service::render(&result);
    print!("{text}");
    report::write_result("fig16/service_load.csv", &service::to_csv(&result))?;
    let path = report::write_result("fig16/service_load.txt", &text)?;
    if !quiet {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
