//! Development probe: per-workload prediction accuracy at moderate
//! coverage. Not a paper experiment — a fast health check for the whole
//! pipeline (`cargo run --release -p pandia-harness --bin probe [machine]`).

use pandia_harness::{
    experiments::{
        curves, exec_from_args, positional_args, quiet_from_args, runnable_workloads,
        telemetry_from_args,
    },
    metrics::{self},
    MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let exec = exec_from_args();
    let positional = positional_args();
    let machine = positional.first().cloned().unwrap_or_else(|| "x3-2".into());
    let ctx = match machine.as_str() {
        "x5-2" => MachineContext::x5_2()?,
        "x4-2" => MachineContext::x4_2()?,
        "x2-4" => MachineContext::x2_4()?,
        _ => MachineContext::x3_2()?,
    };
    let per_n: usize = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let placements = ctx.enumerator().sampled(&ctx.spec, per_n);
    if !quiet {
        eprintln!(
            "machine {} — {} placements/workload",
            ctx.description.machine,
            placements.len()
        );
    }
    let workloads = runnable_workloads(&ctx, pandia_workloads::paper_suite());
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>9} {:>6}  bottleneck-profile",
        "workload", "mean%", "med%", "offm%", "offmed%", "bestgap%", "n*"
    );
    let mut med_all = Vec::new();
    let mut gaps = Vec::new();
    for w in &workloads {
        let curve = curves::workload_curve_with(&exec, &ctx, w, &placements)?;
        let stats = metrics::error_stats(&curve);
        let gap = metrics::best_placement_gap(&curve);
        let best = curve.measured_best_placement().unwrap();
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>9.2} {:>6}",
            w.name,
            stats.mean_error_pct,
            stats.median_error_pct,
            stats.mean_offset_error_pct,
            stats.median_offset_error_pct,
            gap,
            best.n_threads,
        );
        med_all.push(stats.median_error_pct);
        gaps.push(gap);
    }
    println!(
        "== overall: median-of-medians {:.2}%  mean gap {:.2}%  median gap {:.2}%",
        metrics::median(&mut med_all),
        metrics::mean(&gaps),
        metrics::median(&mut gaps),
    );
    Ok(())
}
