//! Model-term ablation: prediction accuracy with each part of Pandia's
//! model disabled in turn.
//!
//! `cargo run --release -p pandia-harness --bin ablation [machine]`

use pandia_harness::{
    experiments::{ablation, quiet_from_args, telemetry_from_args, Coverage},
    report, MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let machine = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "x5-2".into());
    let mut ctx = MachineContext::by_name(&machine)?;
    // A representative subset spanning the contention spectrum keeps the
    // ablation affordable; pass no names to cover everything.
    let subset = ["EP", "CG", "MD", "IS", "FT", "Sort-Join", "Swim", "PageRank"];
    let result = ablation::run(&mut ctx, Coverage::from_args(), &subset)?;
    let text = ablation::render(&result);
    print!("{text}");
    let path = report::write_result(&format!("ablation_{machine}.txt"), &text)?;
    if !quiet {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
