//! Figure 17 (beyond the paper): the placement service under overload —
//! throughput, tail latency, and bounded-memory counters, naive
//! (unbounded queue) vs. shedding (admission control + backpressure),
//! vs. arrival rate.
//!
//! `cargo run --release -p pandia-harness --bin fig17_overload [--quick]
//! [--jobs N] [--no-cache] [machines] [seed]`

use std::time::Instant;

use pandia_harness::{
    experiments::{
        exec_from_args, overload, positional_args, quiet_from_args, report_exec,
        telemetry_from_args, Coverage,
    },
    report,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let _telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let exec = exec_from_args();
    let positional = positional_args();
    let machines: usize = positional.first().and_then(|s| s.parse().ok()).unwrap_or(4).max(1);
    let seed: u64 = positional.get(1).and_then(|s| s.parse().ok()).unwrap_or(0xF17);
    let (events, biases): (usize, &[f64]) = match Coverage::from_args() {
        Coverage::Quick => (250, &[0.55, 0.90]),
        Coverage::Paper => (1000, &overload::ARRIVAL_BIASES),
    };
    if !quiet {
        eprintln!(
            "overload sweep: {} synthetic machines, {} events/stream, biases {:?}, 2 policies (jobs={})",
            machines,
            events,
            biases,
            exec.jobs()
        );
    }

    let start = Instant::now();
    let result = overload::run(&exec, machines, events, biases, seed)?;
    report_exec(&exec, "overload", start, quiet);

    let text = overload::render(&result);
    print!("{text}");
    report::write_result("fig17/overload.csv", &overload::to_csv(&result))?;
    let path = report::write_result("fig17/overload.txt", &text)?;
    if !quiet {
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}
