//! Figure 11: per-workload error and offset-error statistics.
//!
//! * `fig11_errors x5-2` / `x4-2` / `x3-2` — panels a/b (same-machine
//!   descriptions);
//! * `fig11_errors portability` — panels c/d (X3-2 descriptions on the
//!   X5-2 and vice versa).
//!
//! Add `--quick` for a fast low-coverage pass, `--jobs N` to set the
//! worker count (default: all hardware threads; the written results are
//! bit-identical for every value), `--no-cache` to disable prediction
//! memoization, `--quiet` to silence stderr progress, and
//! `--trace-out FILE` / `--metrics-out FILE` to capture telemetry, and
//! `--events-out FILE` to stream span events live (appended after each
//! panel, so a long sweep is watchable in flight).

use std::time::Instant;

use pandia_core::ExecContext;
use pandia_harness::{
    experiments::{
        errors, exec_from_args, positional_args, quiet_from_args, report_exec,
        runnable_workloads, telemetry_from_args, Coverage, TelemetryGuard,
    },
    report, MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut telemetry = telemetry_from_args();
    let quiet = quiet_from_args();
    let coverage = Coverage::from_args();
    let exec = exec_from_args();
    let mode = positional_args().into_iter().next().unwrap_or_else(|| "x5-2".into());

    if mode == "portability" {
        run_portability(coverage, &exec, quiet, &mut telemetry)
    } else {
        run_panel(&mode, coverage, &exec, quiet, &mut telemetry)
    }
}

fn run_panel(
    machine: &str,
    coverage: Coverage,
    exec: &ExecContext,
    quiet: bool,
    telemetry: &mut TelemetryGuard,
) -> Result<(), Box<dyn std::error::Error>> {
    let ctx = MachineContext::by_name(machine)?;
    let placements = coverage.placements(&ctx);
    let workloads = runnable_workloads(&ctx, pandia_workloads::paper_suite());
    let start = Instant::now();
    let bars = errors::error_bars_with(exec, &ctx, &workloads, &placements)?;
    report_exec(exec, &format!("error sweep on {machine}"), start, quiet);
    telemetry.poll_events();
    let title = format!("Figure 11 — errors on {}", bars.title);
    let table = report::error_table(&title, &bars.stats);
    print!("{table}");
    println!(
        "summary: median error {:.2}%, median offset error {:.2}%, best-gap mean {:.2}% median {:.2}%",
        bars.summary.median_error_pct,
        bars.summary.median_offset_error_pct,
        bars.summary.mean_best_gap_pct,
        bars.summary.median_best_gap_pct
    );
    report::write_result(&format!("fig11/{machine}.txt"), &table)?;
    report::write_result(&format!("fig11/{machine}.csv"), &report::error_csv(&bars.stats))?;
    Ok(())
}

fn run_portability(
    coverage: Coverage,
    exec: &ExecContext,
    quiet: bool,
    telemetry: &mut TelemetryGuard,
) -> Result<(), Box<dyn std::error::Error>> {
    // Panel c: X3-2 descriptions used on the X5-2.
    // Panel d: X5-2 descriptions used on the X3-2.
    for (src_name, dst_name, panel) in [("x3-2", "x5-2", "c"), ("x5-2", "x3-2", "d")] {
        let src = MachineContext::by_name(src_name)?;
        let dst = MachineContext::by_name(dst_name)?;
        let placements = coverage.placements(&dst);
        let workloads = runnable_workloads(&dst, pandia_workloads::paper_suite());
        let start = Instant::now();
        let bars = errors::portability_with(exec, &src, &dst, &workloads, &placements)?;
        report_exec(exec, &format!("portability {src_name} -> {dst_name}"), start, quiet);
        let title = format!("Figure 11{panel} — {}", bars.title);
        let table = report::error_table(&title, &bars.stats);
        print!("{table}");
        println!(
            "summary: median error {:.2}%, median offset error {:.2}%\n",
            bars.summary.median_error_pct, bars.summary.median_offset_error_pct
        );
        report::write_result(&format!("fig11/portability_{panel}.txt"), &table)?;
        report::write_result(
            &format!("fig11/portability_{panel}.csv"),
            &report::error_csv(&bars.stats),
        )?;
        // Keep the --events-out stream current between panels.
        telemetry.poll_events();
    }
    Ok(())
}
