//! Figure 11: per-workload error and offset-error statistics.
//!
//! * `fig11_errors x5-2` / `x4-2` / `x3-2` — panels a/b (same-machine
//!   descriptions);
//! * `fig11_errors portability` — panels c/d (X3-2 descriptions on the
//!   X5-2 and vice versa).
//!
//! Add `--quick` for a fast low-coverage pass.

use pandia_harness::{
    experiments::{errors, runnable_workloads, Coverage},
    report, MachineContext,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let coverage = Coverage::from_args();
    let mode = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "x5-2".into());

    if mode == "portability" {
        run_portability(coverage)
    } else {
        run_panel(&mode, coverage)
    }
}

fn run_panel(machine: &str, coverage: Coverage) -> Result<(), Box<dyn std::error::Error>> {
    let mut ctx = MachineContext::by_name(machine)?;
    let placements = coverage.placements(&ctx);
    let workloads = runnable_workloads(&ctx, pandia_workloads::paper_suite());
    let bars = errors::error_bars(&mut ctx, &workloads, &placements)?;
    let title = format!("Figure 11 — errors on {}", bars.title);
    let table = report::error_table(&title, &bars.stats);
    print!("{table}");
    println!(
        "summary: median error {:.2}%, median offset error {:.2}%, best-gap mean {:.2}% median {:.2}%",
        bars.summary.median_error_pct,
        bars.summary.median_offset_error_pct,
        bars.summary.mean_best_gap_pct,
        bars.summary.median_best_gap_pct
    );
    report::write_result(&format!("fig11/{machine}.txt"), &table)?;
    report::write_result(&format!("fig11/{machine}.csv"), &report::error_csv(&bars.stats))?;
    Ok(())
}

fn run_portability(coverage: Coverage) -> Result<(), Box<dyn std::error::Error>> {
    // Panel c: X3-2 descriptions used on the X5-2.
    // Panel d: X5-2 descriptions used on the X3-2.
    for (src_name, dst_name, panel) in [("x3-2", "x5-2", "c"), ("x5-2", "x3-2", "d")] {
        let mut src = MachineContext::by_name(src_name)?;
        let mut dst = MachineContext::by_name(dst_name)?;
        let placements = coverage.placements(&dst);
        let workloads = runnable_workloads(&dst, pandia_workloads::paper_suite());
        let bars = errors::portability(&mut src, &mut dst, &workloads, &placements)?;
        let title = format!("Figure 11{panel} — {}", bars.title);
        let table = report::error_table(&title, &bars.stats);
        print!("{table}");
        println!(
            "summary: median error {:.2}%, median offset error {:.2}%\n",
            bars.summary.median_error_pct, bars.summary.median_offset_error_pct
        );
        report::write_result(&format!("fig11/portability_{panel}.txt"), &table)?;
        report::write_result(
            &format!("fig11/portability_{panel}.csv"),
            &report::error_csv(&bars.stats),
        )?;
    }
    Ok(())
}
