//! Diff two `--trace-out` captures of the same experiment.
//!
//! `cargo run --release -p pandia-harness --bin trace_diff -- \
//!     BASELINE.json CANDIDATE.json [--fail-above PCT] [--min-ms MS]`
//!
//! Spans are paired by their stable sequence numbers and aggregated into
//! per-phase wall-time deltas (see `pandia_harness::tracediff`). With
//! `--fail-above PCT` the exit code turns red when any phase slowed down
//! by more than the threshold, so CI can gate on it; `--min-ms MS`
//! excludes phases with less than MS milliseconds of baseline wall time
//! from the gate (tiny phases jitter too much to be signal).
//!
//! Exit codes: 0 = within threshold (or no threshold), 1 = a phase
//! regressed past `--fail-above`, 2 = usage or input error.

use std::path::PathBuf;
use std::process::ExitCode;

use pandia_harness::tracediff;

fn parse_args() -> Result<(PathBuf, PathBuf, Option<f64>, f64), String> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut fail_above: Option<f64> = None;
    let mut min_ms = 0.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--fail-above" {
            let value = args
                .next()
                .ok_or_else(|| "--fail-above requires a percentage".to_string())?;
            let pct = value
                .parse::<f64>()
                .map_err(|e| format!("--fail-above {value}: {e}"))?;
            fail_above = Some(pct);
        } else if arg == "--min-ms" {
            let value =
                args.next().ok_or_else(|| "--min-ms requires milliseconds".to_string())?;
            min_ms = value.parse::<f64>().map_err(|e| format!("--min-ms {value}: {e}"))?;
        } else if arg.starts_with('-') {
            return Err(format!("unknown flag {arg}"));
        } else {
            paths.push(PathBuf::from(arg));
        }
    }
    match <[PathBuf; 2]>::try_from(paths) {
        Ok([base, cand]) => Ok((base, cand, fail_above, min_ms)),
        Err(_) => Err(
            "usage: trace_diff BASELINE.json CANDIDATE.json [--fail-above PCT] [--min-ms MS]"
                .into(),
        ),
    }
}

fn main() -> ExitCode {
    let (base, cand, fail_above, min_ms) = match parse_args() {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("trace_diff: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = match tracediff::diff_trace_files(&base, &cand) {
        Ok(diff) => diff,
        Err(e) => {
            eprintln!("trace_diff: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", diff.render());
    if let Some(threshold) = fail_above {
        let worst = diff.worst_regression_pct_above(min_ms * 1000.0);
        if worst > threshold {
            eprintln!(
                "trace_diff: worst regression {worst:.1}% exceeds --fail-above {threshold}%"
            );
            return ExitCode::FAILURE;
        }
        println!("worst regression {worst:.1}% within --fail-above {threshold}%");
    }
    ExitCode::SUCCESS
}
