//! Error metrics of §6.1.
//!
//! Two per-workload statistics quantify prediction quality over a set of
//! placements:
//!
//! * **Error** — `|predicted − measured| / measured` per placement;
//! * **Offset error** — the mean difference between the two curves is
//!   added to the predicted curve first, isolating *trend* accuracy from
//!   any constant offset.
//!
//! Plus the headline decision metric: the performance gap between the
//! placement Pandia predicts to be fastest and the placement that actually
//! measured fastest.

use serde::{Deserialize, Serialize};

use crate::runner::PlacementCurve;

/// Mean/median error and offset error for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Workload name.
    pub workload: String,
    /// Mean error across placements (percent).
    pub mean_error_pct: f64,
    /// Median error across placements (percent).
    pub median_error_pct: f64,
    /// Mean offset error (percent).
    pub mean_offset_error_pct: f64,
    /// Median offset error (percent).
    pub median_offset_error_pct: f64,
    /// Number of placements evaluated.
    pub placements: usize,
}

/// Median of a sample (empty → 0).
pub fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        0.5 * (values[n / 2 - 1] + values[n / 2])
    }
}

/// Mean of a sample (empty → 0).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Computes the §6.1 error statistics for one curve.
///
/// Errors are computed on the *normalized performance* scale the figures
/// plot, making them comparable across workloads with different absolute
/// runtimes.
pub fn error_stats(curve: &PlacementCurve) -> ErrorStats {
    let measured = curve.normalized_measured();
    let predicted = curve.normalized_predicted();
    let mut errors: Vec<f64> = measured
        .iter()
        .zip(&predicted)
        .map(|(m, p)| 100.0 * (p - m).abs() / m.max(1e-12))
        .collect();
    // Offset error: shift the predicted curve by the mean difference
    // before measuring.
    let offset = mean(
        &measured.iter().zip(&predicted).map(|(m, p)| m - p).collect::<Vec<f64>>(),
    );
    let mut offset_errors: Vec<f64> = measured
        .iter()
        .zip(&predicted)
        .map(|(m, p)| 100.0 * (p + offset - m).abs() / m.max(1e-12))
        .collect();
    ErrorStats {
        workload: curve.workload.clone(),
        mean_error_pct: mean(&errors),
        median_error_pct: median(&mut errors),
        mean_offset_error_pct: mean(&offset_errors),
        median_offset_error_pct: median(&mut offset_errors),
        placements: curve.points.len(),
    }
}

/// The §6.1 decision metric: how much slower the placement Pandia picks
/// (fastest *predicted*) actually runs compared with the fastest
/// *measured* placement, in percent (0 = Pandia picked the true best).
pub fn best_placement_gap(curve: &PlacementCurve) -> f64 {
    let best_measured = curve.best_measured();
    let chosen = match curve.predicted_best_placement() {
        Some(p) => p,
        None => return 0.0,
    };
    // Time actually measured at the placement Pandia would choose.
    100.0 * (chosen.measured - best_measured) / best_measured
}

/// Aggregate statistics across workloads (the summary numbers quoted in
/// §6.1 and the abstract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSummary {
    /// Machine name.
    pub machine: String,
    /// Mean best-placement gap across workloads (percent).
    pub mean_best_gap_pct: f64,
    /// Median best-placement gap across workloads (percent).
    pub median_best_gap_pct: f64,
    /// Median across workloads of the per-workload median error.
    pub median_error_pct: f64,
    /// Median across workloads of the per-workload median offset error.
    pub median_offset_error_pct: f64,
    /// Fraction of workloads whose best measured placement uses fewer
    /// threads than the machine offers (§6.1's peak-thread observation).
    pub frac_peak_below_max_threads: f64,
}

/// Builds the machine-level summary from per-workload curves.
pub fn machine_summary(machine: &str, curves: &[PlacementCurve]) -> MachineSummary {
    let mut gaps: Vec<f64> = curves.iter().map(best_placement_gap).collect();
    let stats: Vec<ErrorStats> = curves.iter().map(error_stats).collect();
    let mut med_errors: Vec<f64> = stats.iter().map(|s| s.median_error_pct).collect();
    let mut med_offsets: Vec<f64> = stats.iter().map(|s| s.median_offset_error_pct).collect();
    let max_threads = curves
        .iter()
        .flat_map(|c| c.points.iter().map(|p| p.n_threads))
        .max()
        .unwrap_or(0);
    let below = curves
        .iter()
        .filter(|c| {
            c.measured_best_placement().map(|p| p.n_threads < max_threads).unwrap_or(false)
        })
        .count();
    MachineSummary {
        machine: machine.to_string(),
        mean_best_gap_pct: mean(&gaps),
        median_best_gap_pct: median(&mut gaps),
        median_error_pct: median(&mut med_errors),
        median_offset_error_pct: median(&mut med_offsets),
        frac_peak_below_max_threads: if curves.is_empty() {
            0.0
        } else {
            below as f64 / curves.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CurvePoint;
    use pandia_topology::CanonicalPlacement;

    fn curve(points: Vec<(f64, f64)>) -> PlacementCurve {
        PlacementCurve {
            workload: "w".into(),
            machine: "m".into(),
            points: points
                .into_iter()
                .enumerate()
                .map(|(i, (measured, predicted))| CurvePoint {
                    placement: CanonicalPlacement::new(vec![vec![1; i + 1]]),
                    n_threads: i + 1,
                    measured,
                    predicted,
                })
                .collect(),
        }
    }

    #[test]
    fn median_and_mean_basics() {
        assert_eq!(median(&mut [3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&mut [4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&mut []), 0.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn median_edge_cases() {
        // Single element: the median is that element.
        assert_eq!(median(&mut [7.5]), 7.5);
        assert_eq!(mean(&[7.5]), 7.5);
        // Even length: midpoint of the two central elements.
        assert_eq!(median(&mut [1.0, 2.0]), 1.5);
        // Tied values: ties collapse to the tied value, odd or even.
        assert_eq!(median(&mut [3.0, 3.0, 3.0]), 3.0);
        assert_eq!(median(&mut [2.0, 3.0, 3.0, 9.0]), 3.0);
        assert_eq!(mean(&[3.0, 3.0, 3.0]), 3.0);
        // Unsorted input with duplicates straddling the midpoint.
        assert_eq!(median(&mut [5.0, 1.0, 5.0, 1.0]), 3.0);
    }

    #[test]
    fn error_stats_on_empty_curve() {
        let c = curve(vec![]);
        let s = error_stats(&c);
        assert_eq!(s.placements, 0);
        assert_eq!(s.mean_error_pct, 0.0);
        assert_eq!(s.median_error_pct, 0.0);
        assert_eq!(s.mean_offset_error_pct, 0.0);
        assert_eq!(s.median_offset_error_pct, 0.0);
        assert_eq!(best_placement_gap(&c), 0.0);
    }

    #[test]
    fn error_stats_on_single_point_curve() {
        // One placement: normalization makes measured == predicted == 1,
        // so every error is zero and the decision gap is trivially zero.
        let c = curve(vec![(4.0, 8.0)]);
        let s = error_stats(&c);
        assert_eq!(s.placements, 1);
        assert!(s.mean_error_pct < 1e-9);
        assert!(s.median_error_pct < 1e-9);
        assert_eq!(best_placement_gap(&c), 0.0);
    }

    #[test]
    fn error_stats_with_tied_measurements() {
        // Two placements measuring identically: whichever Pandia picks,
        // the decision gap is zero even when predictions disagree.
        let c = curve(vec![(5.0, 9.0), (5.0, 2.0)]);
        assert_eq!(best_placement_gap(&c), 0.0);
        let s = error_stats(&c);
        assert_eq!(s.placements, 2);
        assert!(s.mean_error_pct.is_finite());
    }

    #[test]
    fn machine_summary_on_no_curves() {
        let s = machine_summary("empty", &[]);
        assert_eq!(s.mean_best_gap_pct, 0.0);
        assert_eq!(s.median_best_gap_pct, 0.0);
        assert_eq!(s.frac_peak_below_max_threads, 0.0);
    }

    #[test]
    fn perfect_predictions_have_zero_error() {
        let c = curve(vec![(10.0, 10.0), (5.0, 5.0), (2.5, 2.5)]);
        let s = error_stats(&c);
        assert!(s.mean_error_pct < 1e-9);
        assert!(s.median_offset_error_pct < 1e-9);
        assert_eq!(best_placement_gap(&c), 0.0);
    }

    #[test]
    fn constant_offset_vanishes_under_offset_error() {
        // Predicted normalized curve differs by a constant shift: the
        // plain error is nonzero but the offset error collapses.
        let c = curve(vec![(10.0, 12.5), (5.0, 6.25), (2.5, 3.125)]);
        let s = error_stats(&c);
        // Times scale by 1.25 => normalized performances are identical,
        // so construct a real shift instead: tweak one point.
        assert!(s.mean_error_pct < 1e-9, "pure scaling vanishes under normalization");
        let c2 = curve(vec![(10.0, 11.0), (5.0, 6.0), (2.5, 3.5)]);
        let s2 = error_stats(&c2);
        assert!(s2.mean_offset_error_pct <= s2.mean_error_pct + 1e-9);
    }

    #[test]
    fn best_placement_gap_measures_decision_quality() {
        // Pandia predicts placement 2 fastest, but placement 3 measured
        // fastest (2.0 vs chosen's 2.4): gap = 20%.
        let c = curve(vec![(10.0, 9.0), (2.4, 1.0), (2.0, 1.5)]);
        let gap = best_placement_gap(&c);
        assert!((gap - 20.0).abs() < 1e-9, "gap {gap}");
    }

    #[test]
    fn machine_summary_aggregates() {
        let c1 = curve(vec![(10.0, 10.0), (5.0, 5.0), (2.0, 2.0)]);
        let c2 = curve(vec![(10.0, 9.0), (2.4, 1.0), (2.0, 1.5)]);
        let s = machine_summary("m", &[c1, c2]);
        assert_eq!(s.machine, "m");
        assert!((s.mean_best_gap_pct - 10.0).abs() < 1e-9);
        assert!((s.median_best_gap_pct - 10.0).abs() < 1e-9);
        // c1's best is at max threads (3); c2's best measured is also at
        // n=3 => fraction below max = 0.
        assert_eq!(s.frac_peak_below_max_threads, 0.0);
    }
}
