//! Machine contexts: a simulated machine plus everything Pandia has
//! learned about it.

use pandia_core::{
    describe_machine, MachineDescription, PandiaError, ProfileReport, WorkloadProfiler,
};
use pandia_sim::{Behavior, SimMachine};
use pandia_topology::{MachineSpec, PlacementEnumerator};
use pandia_workloads::WorkloadEntry;

/// A simulated machine with its generated machine description.
#[derive(Debug, Clone)]
pub struct MachineContext {
    /// The ground-truth platform.
    pub platform: SimMachine,
    /// The physical spec (used only for shape/name bookkeeping in the
    /// harness; Pandia itself works from the description).
    pub spec: MachineSpec,
    /// Pandia's measured machine description.
    pub description: MachineDescription,
}

impl MachineContext {
    /// Builds a context for a spec: spins up the simulator and runs the
    /// machine description generator.
    pub fn new(spec: MachineSpec) -> Result<Self, PandiaError> {
        let mut platform = SimMachine::new(spec.clone());
        let description = describe_machine(&mut platform)?;
        Ok(Self { platform, spec, description })
    }

    /// The two-socket Haswell X5-2 (72 hardware threads).
    pub fn x5_2() -> Result<Self, PandiaError> {
        Self::new(MachineSpec::x5_2())
    }

    /// The two-socket Ivy Bridge X4-2 (32 hardware threads).
    pub fn x4_2() -> Result<Self, PandiaError> {
        Self::new(MachineSpec::x4_2())
    }

    /// The two-socket Sandy Bridge X3-2 (32 hardware threads).
    pub fn x3_2() -> Result<Self, PandiaError> {
        Self::new(MachineSpec::x3_2())
    }

    /// The four-socket Westmere X2-4 (80 hardware threads).
    pub fn x2_4() -> Result<Self, PandiaError> {
        Self::new(MachineSpec::x2_4())
    }

    /// Looks up a machine preset by its model name (`"x5-2"`, `"x4-2"`,
    /// `"x3-2"`, `"x2-4"`, case-insensitive).
    pub fn by_name(name: &str) -> Result<Self, PandiaError> {
        match name.to_ascii_lowercase().as_str() {
            "x5-2" | "x5_2" | "haswell" => Self::x5_2(),
            "x4-2" | "x4_2" | "ivybridge" | "ivy-bridge" => Self::x4_2(),
            "x3-2" | "x3_2" | "sandybridge" | "sandy-bridge" => Self::x3_2(),
            "x2-4" | "x2_4" | "westmere" => Self::x2_4(),
            other => Err(PandiaError::Mismatch {
                reason: format!("unknown machine preset '{other}'"),
            }),
        }
    }

    /// A placement enumerator for this machine.
    pub fn enumerator(&self) -> PlacementEnumerator {
        PlacementEnumerator::new(&self.spec)
    }

    /// Profiles one workload on this machine (the six runs of §4).
    pub fn profile(&mut self, workload: &WorkloadEntry) -> Result<ProfileReport, PandiaError> {
        let profiler = WorkloadProfiler::new(&self.description);
        profiler.profile(&mut self.platform, &workload.behavior, workload.name)
    }

    /// Profiles a raw behavior under a given name.
    pub fn profile_behavior(
        &mut self,
        behavior: &Behavior,
        name: &str,
    ) -> Result<ProfileReport, PandiaError> {
        let profiler = WorkloadProfiler::new(&self.description);
        profiler.profile(&mut self.platform, behavior, name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_builds_and_description_matches_shape() {
        let ctx = MachineContext::x3_2().unwrap();
        assert_eq!(ctx.description.shape.sockets, 2);
        assert_eq!(ctx.description.shape.cores_per_socket, 8);
        assert!(ctx.description.capacities.dram_per_socket > 0.0);
    }

    #[test]
    fn profiling_through_context_works() {
        let mut ctx = MachineContext::x3_2().unwrap();
        let wl = pandia_workloads::by_name("EP").unwrap();
        let report = ctx.profile(&wl).unwrap();
        assert_eq!(report.description.name, "EP");
        // EP is embarrassingly parallel: near-perfect fitted fraction.
        assert!(report.description.parallel_fraction > 0.95);
    }
}
