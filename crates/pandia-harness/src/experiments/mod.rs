//! One driver per paper figure/table.
//!
//! | Module | Reproduces |
//! |--------|------------|
//! | [`worked_example`] | Figures 3-9: the toy machine walk-through |
//! | [`curves`] | Figure 1 (MD) and Figure 10 (remaining workloads) |
//! | [`errors`] | Figure 11a-d: error/offset-error bars + portability |
//! | [`four_socket`] | Figure 12: the X2-4 placement classes |
//! | [`limits`] | Figure 13: NPO-1T and equake |
//! | [`turbo`] | Figure 14: Turbo Boost instruction-rate curves |
//! | [`sweep`] | §6.3's simple-pattern-exploration baseline |
//! | [`summary`] | §6.1's headline statistics |
//! | [`ablation`] | model-term ablation (beyond the paper) |
//! | [`coschedule_validation`] | §8 co-scheduling extension, validated |
//! | [`robustness`] | accuracy over random synthetic workloads |
//! | [`chaos`] | Figure 15: profiling under fault injection |
//! | [`service`] | Figure 16: the placement service under load |
//! | [`overload`] | Figure 17: overload — admission, shedding, bounded memory |

pub mod ablation;
pub mod chaos;
pub mod coschedule_validation;
pub mod curves;
pub mod errors;
pub mod four_socket;
pub mod limits;
pub mod overload;
pub mod robustness;
pub mod service;
pub mod summary;
pub mod sweep;
pub mod turbo;
pub mod worked_example;

use pandia_core::{ExecContext, PandiaError};
use pandia_topology::CanonicalPlacement;

use crate::context::MachineContext;

/// How densely to sample the placement space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// A handful of placements per thread count — seconds per workload,
    /// used by tests and `--quick` binaries.
    Quick,
    /// Matches the paper's coverage (~20% of the X5-2 space, exhaustive on
    /// the smaller machines).
    Paper,
}

impl Coverage {
    /// Parses `--quick` style flags from argv.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--quick" || a == "-q") {
            Coverage::Quick
        } else {
            Coverage::Paper
        }
    }

    /// Placement candidates for a machine under this coverage.
    pub fn placements(&self, ctx: &MachineContext) -> Vec<CanonicalPlacement> {
        let e = ctx.enumerator();
        match self {
            Coverage::Quick => e.sampled(&ctx.spec, 3),
            Coverage::Paper => {
                // Exhaustive when the space is small, else sampled to the
                // paper's density (~42/thread count ≈ 3000 on the X5-2).
                if e.count() <= 2_500 {
                    e.all()
                } else {
                    e.sampled(&ctx.spec, 42)
                }
            }
        }
    }
}

/// Builds an [`ExecContext`] from `--jobs N` / `--no-cache` style argv
/// flags, shared by the experiment binaries.
///
/// Defaults to one worker per available hardware thread with memoization
/// on; experiment outputs are bit-identical for every worker count, so
/// the flags only trade wall-clock time.
pub fn exec_from_args() -> ExecContext {
    let args: Vec<String> = std::env::args().collect();
    let mut jobs =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut cache = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--jobs" | "-j" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    jobs = v.max(1);
                    i += 1;
                }
            }
            "--no-cache" => cache = false,
            _ => {}
        }
        i += 1;
    }
    ExecContext::new(jobs).with_cache(cache)
}

/// Whether `--quiet` was passed: silences the binaries' stderr progress
/// notes (wall times, cache stats, "wrote ..." lines) so piped stderr is
/// clean. Result files are unaffected.
pub fn quiet_from_args() -> bool {
    std::env::args().any(|a| a == "--quiet")
}

/// A flush-on-drop handle for the telemetry sinks, built by
/// [`telemetry_from_args`]. While it lives, telemetry is recording (when
/// either output flag was given); when it drops — normally at the end of
/// `main` — the requested sink files are written.
#[derive(Debug, Default)]
pub struct TelemetryGuard {
    trace_out: Option<String>,
    metrics_out: Option<String>,
    events_stream: Option<pandia_obs::EventsStream>,
    quiet: bool,
}

impl TelemetryGuard {
    /// Builds a guard from already-parsed sink paths and, when any is
    /// present, installs the global telemetry recorder. Used by front-ends
    /// (like the CLI) that parse their own flags instead of calling
    /// [`telemetry_from_args`]. `events_out` opens a live span-event
    /// stream immediately (so the file exists and is tailable from the
    /// start); call [`Self::poll_events`] at natural checkpoints to keep
    /// it current — any remainder is flushed on drop.
    pub fn new(
        trace_out: Option<String>,
        metrics_out: Option<String>,
        events_out: Option<String>,
        quiet: bool,
    ) -> Self {
        let mut guard = TelemetryGuard { trace_out, metrics_out, events_stream: None, quiet };
        if guard.trace_out.is_some() || guard.metrics_out.is_some() || events_out.is_some() {
            pandia_obs::install();
        }
        if let Some(path) = events_out {
            match pandia_obs::EventsStream::create(&path) {
                Ok(stream) => guard.events_stream = Some(stream),
                Err(e) => eprintln!("failed to open {path}: {e}"),
            }
        }
        guard
    }

    /// Whether any telemetry sink was requested.
    pub fn active(&self) -> bool {
        self.trace_out.is_some() || self.metrics_out.is_some() || self.events_stream.is_some()
    }

    /// Appends any newly completed spans to the `--events-out` stream.
    /// Cheap no-op when the flag was not given.
    pub fn poll_events(&mut self) {
        if let (Some(stream), Some(recorder)) = (self.events_stream.as_mut(), pandia_obs::global())
        {
            if let Err(e) = stream.poll(recorder) {
                eprintln!("failed to append to {}: {e}", stream.path().display());
            }
        }
    }

    /// Writes the requested sink files now (normally done on drop).
    /// Idempotent: each file is written at most once.
    pub fn flush(&mut self) {
        self.poll_events();
        let Some(recorder) = pandia_obs::global() else { return };
        for (path, contents) in [
            (self.trace_out.take(), recorder.chrome_trace_json()),
            (self.metrics_out.take(), recorder.metrics_jsonl()),
        ] {
            let Some(path) = path else { continue };
            match std::fs::write(&path, contents) {
                Ok(()) => {
                    if !self.quiet {
                        eprintln!("wrote {path}");
                    }
                }
                Err(e) => eprintln!("failed to write {path}: {e}"),
            }
        }
    }
}

impl Drop for TelemetryGuard {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Parses `--trace-out FILE` / `--metrics-out FILE` / `--events-out FILE`
/// (plus `--trace-buffer SPANS` to size the span buffer for captures
/// larger than the default 2^18 spans) from argv and, when any sink is
/// present, installs the global telemetry recorder. Returns the guard
/// that writes the files when dropped; bind it in `main`:
///
/// ```no_run
/// let _telemetry = pandia_harness::experiments::telemetry_from_args();
/// ```
///
/// Without the flags telemetry stays off and the guard does nothing.
pub fn telemetry_from_args() -> TelemetryGuard {
    let args: Vec<String> = std::env::args().collect();
    let mut trace_out = None;
    let mut metrics_out = None;
    let mut events_out = None;
    let mut trace_buffer = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--trace-out" => {
                if let Some(v) = args.get(i + 1) {
                    trace_out = Some(v.clone());
                    i += 1;
                }
            }
            "--metrics-out" => {
                if let Some(v) = args.get(i + 1) {
                    metrics_out = Some(v.clone());
                    i += 1;
                }
            }
            "--events-out" => {
                if let Some(v) = args.get(i + 1) {
                    events_out = Some(v.clone());
                    i += 1;
                }
            }
            "--trace-buffer" => {
                if let Some(v) = args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    trace_buffer = Some(v.max(1));
                    i += 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    // Size the buffer before TelemetryGuard::new installs the recorder
    // with the default cap (install is first-call-wins).
    if let Some(max_events) = trace_buffer {
        if trace_out.is_some() || metrics_out.is_some() || events_out.is_some() {
            pandia_obs::install_with_max_events(max_events);
        }
    }
    TelemetryGuard::new(trace_out, metrics_out, events_out, quiet_from_args())
}

/// Positional argv values with the shared experiment flags (`--quick`,
/// `-q`, `--quiet`, `--jobs N`, `-j N`, `--no-cache`, `--trace-out FILE`,
/// `--metrics-out FILE`, `--events-out FILE`, `--trace-buffer SPANS`)
/// stripped out.
pub fn positional_args() -> Vec<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            // Skip these flags' value arguments too.
            "--jobs" | "-j" | "--trace-out" | "--metrics-out" | "--events-out"
            | "--trace-buffer" => i += 1,
            a if a.starts_with('-') => {}
            a => positional.push(a.to_string()),
        }
        i += 1;
    }
    positional
}

/// Reports a stage's wall time and cache statistics: always into the
/// telemetry registry, and to stderr unless `quiet`. Shared by the
/// experiment binaries (the stderr line used to be an unconditional
/// `eprintln!` in each).
pub fn report_exec(exec: &ExecContext, stage: &str, start: std::time::Instant, quiet: bool) {
    let wall = start.elapsed().as_secs_f64();
    let stats = exec.cache_stats();
    pandia_obs::observe("harness.stage_wall_ms", wall * 1e3);
    pandia_obs::gauge("exec.jobs", exec.jobs() as f64);
    if !quiet {
        eprintln!(
            "{stage}: {wall:.2}s wall (jobs={}; cache {} hits / {} misses, {:.1}% hit rate)",
            exec.jobs(),
            stats.hits,
            stats.misses,
            100.0 * stats.hit_rate()
        );
    }
}

/// Filters the workload list to those runnable on a machine (drops AVX
/// workloads on non-AVX machines, as the paper drops Sort-Join on the
/// X2-4).
pub fn runnable_workloads(
    ctx: &MachineContext,
    workloads: Vec<pandia_workloads::WorkloadEntry>,
) -> Vec<pandia_workloads::WorkloadEntry> {
    workloads
        .into_iter()
        .filter(|w| !w.behavior.requires_avx || ctx.spec.has_avx)
        .collect()
}

/// Convenience alias for driver results.
pub type ExpResult<T> = Result<T, PandiaError>;
