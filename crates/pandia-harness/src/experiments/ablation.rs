//! Ablation study: how much does each part of Pandia's model contribute?
//!
//! The paper's model combines several terms — core burstiness `b` (§4.5),
//! inter-socket overhead `os` (§4.3), the load-balancing interpolation `l`
//! (§4.4), the SMT co-schedule factor (§3.2), and the aggregate L3 limit
//! (§3.1). This experiment disables each term in turn (by zeroing or
//! neutralizing the corresponding description entry — the predictor
//! itself is untouched) and measures the change in prediction error.

use pandia_core::{predict, MachineDescription, PredictorConfig, WorkloadDescription};
use pandia_topology::CanonicalPlacement;
use pandia_workloads::WorkloadEntry;

use crate::{
    context::MachineContext,
    metrics::{error_stats, mean},
    runner::{measure_curve, PlacementCurve},
};

use super::{runnable_workloads, Coverage, ExpResult};

/// One model variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The full model.
    Full,
    /// Core burstiness disabled (`b = 0`).
    NoBurstiness,
    /// Inter-socket overhead disabled (`os = 0`).
    NoInterSocket,
    /// Load balancing forced fully dynamic (`l = 1`: no straggler drag).
    NoLoadBalance,
    /// SMT co-schedule factor neutralized (shared cores keep full issue
    /// capacity).
    NoSmtFactor,
    /// Aggregate L3 limit removed (only per-link limits remain).
    NoAggregateL3,
}

impl Variant {
    /// All variants in report order.
    pub const ALL: [Variant; 6] = [
        Variant::Full,
        Variant::NoBurstiness,
        Variant::NoInterSocket,
        Variant::NoLoadBalance,
        Variant::NoSmtFactor,
        Variant::NoAggregateL3,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Full => "full model",
            Variant::NoBurstiness => "- burstiness (b=0)",
            Variant::NoInterSocket => "- inter-socket (os=0)",
            Variant::NoLoadBalance => "- load balance (l=1)",
            Variant::NoSmtFactor => "- SMT factor",
            Variant::NoAggregateL3 => "- aggregate L3 limit",
        }
    }

    /// Applies the ablation to copies of the descriptions.
    pub fn apply(
        &self,
        machine: &MachineDescription,
        workload: &WorkloadDescription,
    ) -> (MachineDescription, WorkloadDescription) {
        let mut m = machine.clone();
        let mut w = workload.clone();
        match self {
            Variant::Full => {}
            Variant::NoBurstiness => w.burstiness = 0.0,
            Variant::NoInterSocket => w.inter_socket_overhead = 0.0,
            Variant::NoLoadBalance => w.load_balance = 1.0,
            Variant::NoSmtFactor => m.smt_coschedule_factor = 1.0,
            Variant::NoAggregateL3 => {
                m.capacities.l3_aggregate =
                    m.capacities.l3_per_link * m.shape.cores_per_socket as f64;
            }
        }
        (m, w)
    }
}

/// Mean error per variant, averaged over workloads.
#[derive(Debug, Clone)]
pub struct AblationResult {
    /// Machine name.
    pub machine: String,
    /// `(variant, mean-of-mean errors %, mean best-placement gap %)`.
    pub rows: Vec<(Variant, f64, f64)>,
}

/// Runs the ablation on a machine over a workload subset.
pub fn run(
    ctx: &mut MachineContext,
    coverage: Coverage,
    workload_names: &[&str],
) -> ExpResult<AblationResult> {
    let _span = pandia_obs::span("harness", "ablation");
    let placements = coverage.placements(ctx);
    let all = runnable_workloads(ctx, pandia_workloads::paper_suite());
    let workloads: Vec<WorkloadEntry> = all
        .into_iter()
        .filter(|w| workload_names.is_empty() || workload_names.contains(&w.name))
        .collect();

    // Profile once per workload; measured curves are reused across
    // variants (only predictions change).
    let mut profiled = Vec::new();
    for w in &workloads {
        let desc = ctx.profile(w)?.description;
        let full_curve = measure_curve(
            ctx,
            &w.behavior,
            &desc,
            &placements,
            &PredictorConfig::default(),
        )?;
        profiled.push((w.clone(), desc, full_curve));
    }

    let mut rows = Vec::new();
    for variant in Variant::ALL {
        let mut errors = Vec::new();
        let mut gaps = Vec::new();
        for (_, desc, full_curve) in &profiled {
            let curve = repredict(ctx, variant, desc, full_curve, &placements)?;
            errors.push(error_stats(&curve).mean_error_pct);
            gaps.push(crate::metrics::best_placement_gap(&curve));
        }
        rows.push((variant, mean(&errors), mean(&gaps)));
    }
    Ok(AblationResult { machine: ctx.description.machine.clone(), rows })
}

/// Recomputes predictions under a variant, reusing measured times.
fn repredict(
    ctx: &MachineContext,
    variant: Variant,
    desc: &WorkloadDescription,
    measured: &PlacementCurve,
    placements: &[CanonicalPlacement],
) -> ExpResult<PlacementCurve> {
    let (m, w) = variant.apply(&ctx.description, desc);
    let mut curve = measured.clone();
    for (point, canon) in curve.points.iter_mut().zip(placements) {
        let placement = canon.instantiate(&m.shape)?;
        point.predicted =
            predict(&m, &w, &placement, &PredictorConfig::default())?.predicted_time;
    }
    Ok(curve)
}

/// Renders the ablation table.
pub fn render(result: &AblationResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Model ablation on {}", result.machine);
    let _ = writeln!(out, "{:<24} {:>14} {:>16}", "variant", "mean error %", "mean best-gap %");
    for (variant, err, gap) in &result.rows {
        let _ = writeln!(out, "{:<24} {:>14.2} {:>16.2}", variant.label(), err, gap);
    }
    out
}
