//! §6.3 "Simple pattern exploration": the sweep baseline.
//!
//! Instead of Pandia's six profiling runs, simply time a sweep of
//! placements — each thread count packed as tightly as possible and
//! spread as far as possible — and pick the best. The paper reports that
//! the sweep costs 4-8x more machine time than building a workload
//! description, finds the best placement on the small machines (21/22 on
//! the X3-2, 20/22 on the X4-2) but only 8/22 on the larger X5-2.

use pandia_core::{PandiaError, ProfileConfig, WorkloadProfiler};
use pandia_topology::{CanonicalPlacement, HasShape, Platform, RunRequest};
use pandia_workloads::WorkloadEntry;
use serde::{Deserialize, Serialize};

use crate::context::MachineContext;

use super::{runnable_workloads, Coverage, ExpResult};

/// Sweep-vs-Pandia comparison for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// Workload name.
    pub workload: String,
    /// Machine time spent running the sweep.
    pub sweep_cost: f64,
    /// Machine time spent on Pandia's profiling runs (single run each, as
    /// in the paper's §6.3 cost accounting).
    pub profiling_cost: f64,
    /// `sweep_cost / profiling_cost`.
    pub cost_ratio: f64,
    /// Best time observed within the sweep.
    pub sweep_best: f64,
    /// Best time observed over the full evaluated placement set.
    pub global_best: f64,
    /// Whether the sweep found (within measurement tolerance) the best
    /// placement.
    pub found_best: bool,
}

/// Results over all workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// Machine name.
    pub machine: String,
    /// Per-workload outcomes.
    pub outcomes: Vec<SweepOutcome>,
}

impl SweepResult {
    /// Average cost ratio across workloads.
    pub fn mean_cost_ratio(&self) -> f64 {
        crate::metrics::mean(&self.outcomes.iter().map(|o| o.cost_ratio).collect::<Vec<_>>())
    }

    /// Number of workloads where the sweep found the best placement.
    pub fn found_best_count(&self) -> usize {
        self.outcomes.iter().filter(|o| o.found_best).count()
    }
}

/// Tolerance within which two measured times count as "the same
/// placement quality" (covers measurement noise).
const FOUND_TOLERANCE: f64 = 0.01;

/// Runs the sweep baseline on one machine over the full paper suite.
pub fn run(ctx: &mut MachineContext, coverage: Coverage) -> ExpResult<SweepResult> {
    run_subset(ctx, coverage, &[])
}

/// Runs the sweep baseline restricted to the named workloads (empty =
/// all).
pub fn run_subset(
    ctx: &mut MachineContext,
    coverage: Coverage,
    names: &[&str],
) -> ExpResult<SweepResult> {
    let _span = pandia_obs::span("harness", "sweep");
    let workloads: Vec<WorkloadEntry> =
        runnable_workloads(ctx, pandia_workloads::paper_suite())
            .into_iter()
            .filter(|w| names.is_empty() || names.contains(&w.name))
            .collect();
    let enumerator = ctx.enumerator();
    let sweep_placements = enumerator.sweep(&ctx.spec);
    let full_placements = coverage.placements(ctx);
    let mut outcomes = Vec::with_capacity(workloads.len());
    for w in &workloads {
        outcomes.push(run_one(ctx, w, &sweep_placements, &full_placements)?);
    }
    Ok(SweepResult { machine: ctx.description.machine.clone(), outcomes })
}

fn run_one(
    ctx: &mut MachineContext,
    workload: &WorkloadEntry,
    sweep_placements: &[CanonicalPlacement],
    full_placements: &[CanonicalPlacement],
) -> Result<SweepOutcome, PandiaError> {
    let shape = ctx.description.shape();

    // Pandia profiling cost (single-run accounting, §6.3).
    let config = ProfileConfig { repeats: 1, ..ProfileConfig::default() };
    let description = ctx.description.clone();
    let profiler = WorkloadProfiler::with_config(&description, config);
    let report = profiler.profile(&mut ctx.platform, &workload.behavior, workload.name)?;
    let profiling_cost = report.total_cost;

    // Sweep cost and best.
    let mut sweep_cost = 0.0;
    let mut sweep_best = f64::INFINITY;
    for canon in sweep_placements {
        let placement = canon.instantiate(&shape)?;
        let t = ctx
            .platform
            .run(&RunRequest::new(workload.behavior.clone(), placement))?
            .elapsed;
        sweep_cost += t;
        sweep_best = sweep_best.min(t);
    }

    // Global best over the evaluated placement set (sweep included).
    let mut global_best = sweep_best;
    for canon in full_placements {
        let placement = canon.instantiate(&shape)?;
        let t = ctx
            .platform
            .run(&RunRequest::new(workload.behavior.clone(), placement))?
            .elapsed;
        global_best = global_best.min(t);
    }

    Ok(SweepOutcome {
        workload: workload.name.to_string(),
        sweep_cost,
        profiling_cost,
        cost_ratio: sweep_cost / profiling_cost.max(1e-12),
        sweep_best,
        global_best,
        found_best: sweep_best <= global_best * (1.0 + FOUND_TOLERANCE),
    })
}

/// Renders the §6.3 comparison as a text table.
pub fn render(result: &SweepResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Sweep baseline vs Pandia profiling on {}", result.machine);
    let _ = writeln!(
        out,
        "{:<12} {:>12} {:>12} {:>8} {:>12} {:>12} {:>7}",
        "workload", "sweep cost", "profile", "ratio", "sweep best", "global best", "found"
    );
    for o in &result.outcomes {
        let _ = writeln!(
            out,
            "{:<12} {:>12.2} {:>12.2} {:>8.2} {:>12.3} {:>12.3} {:>7}",
            o.workload,
            o.sweep_cost,
            o.profiling_cost,
            o.cost_ratio,
            o.sweep_best,
            o.global_best,
            if o.found_best { "yes" } else { "no" }
        );
    }
    let _ = writeln!(
        out,
        "mean cost ratio {:.2}x; sweep found the best placement for {}/{} workloads",
        result.mean_cost_ratio(),
        result.found_best_count(),
        result.outcomes.len()
    );
    out
}
