//! Figure 15 (beyond the paper): profiling under fault injection.
//!
//! The paper profiles on a quiesced machine. This experiment asks what
//! happens when it isn't: the simulator injects transient run failures,
//! counter dropout, interference bursts, and high-noise regimes at a
//! configurable intensity, and we profile through the storm twice — once
//! with the naive measurement pipeline (no retries, plain means) and once
//! with the robust one (bounded retries, median/MAD outlier rejection,
//! solver fallback). Accuracy is judged against ground truth measured on
//! the *clean* machine, so the score isolates what the faults did to the
//! learned description rather than to the evaluation runs.

use pandia_core::{
    ExecContext, PandiaError, PredictSession, PredictorConfig, ProfileConfig, RobustnessPolicy,
    WorkloadProfiler,
};
use pandia_sim::{FaultPlan, SimConfig, SimMachine};
use pandia_topology::{HasShape, Platform, RunRequest};
use serde::{Deserialize, Serialize};

use crate::{context::MachineContext, metrics::median};

use super::{Coverage, ExpResult};

/// Fault intensities swept by the experiment. Zero is the control: both
/// policies must match the fault-free pipeline exactly there.
pub const INTENSITIES: [f64; 5] = [0.0, 0.2, 0.4, 0.6, 0.8];

/// Aggregated outcome of profiling one (intensity, policy) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Fault intensity in [0, 1].
    pub intensity: f64,
    /// `"naive"` or `"robust"`.
    pub policy: String,
    /// Profiles attempted (workloads × trials).
    pub profiles: usize,
    /// Profiles that failed outright (retry budget exhausted or the
    /// solver hit a degenerate measurement it could not recover from).
    pub failed_profiles: usize,
    /// Median over surviving trials of the per-trial median absolute
    /// prediction error (%) against clean-machine ground truth.
    pub median_error_pct: f64,
    /// Mean of the same per-trial medians (%).
    pub mean_error_pct: f64,
    /// Platform runs attempted across all profiles, including retries.
    pub attempts: usize,
    /// Retries issued after transient faults.
    pub retries: usize,
    /// Repeats abandoned after the retry budget ran out.
    pub lost_repeats: usize,
    /// Repeats dropped for degenerate (non-finite/non-positive) times.
    pub degenerate_repeats: usize,
    /// Repeats rejected as MAD outliers.
    pub outliers_rejected: usize,
    /// Parameter solves that fell back to the closed-form estimate.
    pub fallbacks: usize,
}

/// Full chaos-sweep results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosResult {
    /// Machine name.
    pub machine: String,
    /// Workloads profiled per cell.
    pub workloads: Vec<String>,
    /// Trials per workload per cell.
    pub trials: usize,
    /// One cell per (intensity, policy), intensities ascending, naive
    /// before robust.
    pub cells: Vec<ChaosCell>,
}

/// Ground truth for one workload: clean-machine times per placement.
struct GroundTruth {
    behavior: pandia_sim::Behavior,
    name: String,
    measured: Vec<f64>,
}

/// Runs the chaos sweep: for every intensity and both policies, profile
/// each workload `trials` times on a fault-injecting simulator and score
/// the learned description's predictions against clean ground truth.
pub fn run(
    exec: &ExecContext,
    ctx: &mut MachineContext,
    coverage: Coverage,
    trials: usize,
    seed: u64,
) -> ExpResult<ChaosResult> {
    let _span = pandia_obs::span("harness", "chaos").arg("trials", trials);
    let placements = coverage.placements(ctx);
    let shape = ctx.description.shape();
    let predictor = PredictorConfig::default();
    let workloads = super::runnable_workloads(ctx, pandia_workloads::development_set());

    // Ground truth once per workload: the clean machine, no faults.
    let mut truths = Vec::with_capacity(workloads.len());
    for w in &workloads {
        let measured = exec.parallel_map_sized(
            &placements,
            |canon| canon.total_threads() as f64,
            |canon| -> Result<f64, PandiaError> {
                let placement = canon.instantiate(&shape)?;
                let mut clean = ctx.platform.clone();
                Ok(clean.run(&RunRequest::new(w.behavior.clone(), placement))?.elapsed)
            },
        );
        let mut times = Vec::with_capacity(measured.len());
        for t in measured {
            times.push(t?);
        }
        truths.push(GroundTruth {
            behavior: w.behavior.clone(),
            name: w.name.to_string(),
            measured: times,
        });
    }

    let policies =
        [("naive", RobustnessPolicy::naive()), ("robust", RobustnessPolicy::robust())];
    let mut cells = Vec::new();
    for (ii, &intensity) in INTENSITIES.iter().enumerate() {
        for (label, policy) in &policies {
            let mut cell = ChaosCell {
                intensity,
                policy: (*label).to_string(),
                profiles: 0,
                failed_profiles: 0,
                median_error_pct: 0.0,
                mean_error_pct: 0.0,
                attempts: 0,
                retries: 0,
                lost_repeats: 0,
                degenerate_repeats: 0,
                outliers_rejected: 0,
                fallbacks: 0,
            };
            let mut trial_medians = Vec::new();
            for (wi, truth) in truths.iter().enumerate() {
                for trial in 0..trials {
                    cell.profiles += 1;
                    // One fixed trial index → one fixed fault schedule,
                    // shared between the policies so they face the exact
                    // same storm.
                    let trial_seed = seed
                        ^ 0x9E37_79B9_7F4A_7C15u64
                            .wrapping_mul((ii * 1_000_000 + wi * 1_000 + trial + 1) as u64);
                    let mut faulty = SimMachine::with_config(
                        ctx.spec.clone(),
                        SimConfig::default()
                            .with_faults(FaultPlan::with_intensity(intensity)),
                    );
                    let config = ProfileConfig {
                        seed: trial_seed,
                        robustness: policy.clone(),
                        ..ProfileConfig::default()
                    };
                    let profiler = WorkloadProfiler::with_config(&ctx.description, config);
                    let report =
                        match profiler.profile(&mut faulty, &truth.behavior, &truth.name) {
                            Ok(report) => report,
                            Err(e) if e.is_transient() => {
                                cell.failed_profiles += 1;
                                continue;
                            }
                            Err(PandiaError::Degenerate { .. }) => {
                                cell.failed_profiles += 1;
                                continue;
                            }
                            Err(e) => return Err(e),
                        };
                    cell.attempts += report.audit.attempts;
                    cell.retries += report.audit.retries;
                    cell.lost_repeats += report.audit.lost_repeats;
                    cell.degenerate_repeats += report.audit.degenerate_repeats;
                    cell.outliers_rejected += report.audit.outliers_rejected;
                    cell.fallbacks += report.audit.fallbacks;

                    let session = PredictSession::new(
                        exec,
                        &ctx.description,
                        &report.description,
                        &predictor,
                    )?;
                    let predictions = exec.parallel_map_sized(
                        &placements,
                        |canon| canon.total_threads() as f64,
                        |canon| -> Result<f64, PandiaError> {
                            let placement = canon.instantiate(&shape)?;
                            Ok(session.predict(&placement)?.predicted_time)
                        },
                    );
                    let mut errors = Vec::with_capacity(predictions.len());
                    for (k, p) in predictions.into_iter().enumerate() {
                        let predicted = p?;
                        let measured = truth.measured[k];
                        errors.push(100.0 * (predicted - measured).abs() / measured);
                    }
                    trial_medians.push(median(&mut errors));
                }
            }
            cell.mean_error_pct = if trial_medians.is_empty() {
                0.0
            } else {
                trial_medians.iter().sum::<f64>() / trial_medians.len() as f64
            };
            cell.median_error_pct = median(&mut trial_medians);
            cells.push(cell);
        }
    }
    Ok(ChaosResult {
        machine: ctx.description.machine.clone(),
        workloads: truths.iter().map(|t| t.name.clone()).collect(),
        trials,
        cells,
    })
}

/// Renders the chaos table.
pub fn render(result: &ChaosResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Profiling under fault injection on {} ({} workloads × {} trials per cell)",
        result.machine,
        result.workloads.len(),
        result.trials
    );
    let _ = writeln!(
        out,
        "{:>9} {:>7} {:>9} {:>7} {:>12} {:>10} {:>8} {:>9} {:>9} {:>9}",
        "intensity",
        "policy",
        "profiles",
        "failed",
        "median err%",
        "mean err%",
        "retries",
        "outliers",
        "fallback",
        "lost"
    );
    for c in &result.cells {
        let _ = writeln!(
            out,
            "{:>9.1} {:>7} {:>9} {:>7} {:>12.2} {:>10.2} {:>8} {:>9} {:>9} {:>9}",
            c.intensity,
            c.policy,
            c.profiles,
            c.failed_profiles,
            c.median_error_pct,
            c.mean_error_pct,
            c.retries,
            c.outliers_rejected,
            c.fallbacks,
            c.lost_repeats
        );
    }
    out
}

/// Renders the chaos CSV (one row per cell).
pub fn to_csv(result: &ChaosResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "intensity,policy,profiles,failed_profiles,median_error_pct,mean_error_pct,\
         attempts,retries,lost_repeats,degenerate_repeats,outliers_rejected,fallbacks\n",
    );
    for c in &result.cells {
        let _ = writeln!(
            out,
            "{},{},{},{},{:.6},{:.6},{},{},{},{},{},{}",
            c.intensity,
            c.policy,
            c.profiles,
            c.failed_profiles,
            c.median_error_pct,
            c.mean_error_pct,
            c.attempts,
            c.retries,
            c.lost_repeats,
            c.degenerate_repeats,
            c.outliers_rejected,
            c.fallbacks
        );
    }
    out
}
