//! Robustness study (beyond the paper): prediction accuracy over
//! randomly generated workloads.
//!
//! The paper's defense against overfitting is a 4/18 development/
//! evaluation split of hand-picked benchmarks. Here we go further:
//! sample synthetic workloads from archetype distributions nobody tuned
//! the model against, profile each one, and measure prediction error over
//! a placement sample. Per-archetype statistics show where the model
//! generalizes and where it strains.

use pandia_core::PredictorConfig;
use pandia_workloads::{generate, Archetype};
use serde::{Deserialize, Serialize};

use crate::{
    context::MachineContext,
    metrics::{best_placement_gap, error_stats, mean, median},
    runner::measure_curve,
};

use super::{Coverage, ExpResult};

/// Accuracy over one archetype's sampled workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchetypeStats {
    /// Archetype label.
    pub archetype: String,
    /// Number of sampled workloads.
    pub samples: usize,
    /// Mean of per-workload mean errors (%).
    pub mean_error_pct: f64,
    /// Median of per-workload median errors (%).
    pub median_error_pct: f64,
    /// Mean best-placement gap (%).
    pub mean_gap_pct: f64,
}

/// Full robustness results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessResult {
    /// Machine name.
    pub machine: String,
    /// Per-archetype statistics.
    pub per_archetype: Vec<ArchetypeStats>,
    /// Overall median of per-workload median errors (%).
    pub overall_median_error_pct: f64,
    /// Overall mean gap (%).
    pub overall_mean_gap_pct: f64,
}

/// Runs the robustness study: `per_archetype` random workloads for each
/// of the five archetypes.
pub fn run(
    ctx: &mut MachineContext,
    coverage: Coverage,
    per_archetype: usize,
    seed: u64,
) -> ExpResult<RobustnessResult> {
    let _span = pandia_obs::span("harness", "robustness");
    let placements = coverage.placements(ctx);
    let config = PredictorConfig::default();
    let mut per_archetype_stats = Vec::new();
    let mut all_medians = Vec::new();
    let mut all_gaps = Vec::new();
    for archetype in Archetype::ALL {
        let mut means = Vec::new();
        let mut medians = Vec::new();
        let mut gaps = Vec::new();
        for k in 0..per_archetype {
            let behavior = generate(archetype, seed.wrapping_add(k as u64));
            let desc = ctx.profile_behavior(&behavior, &behavior.name.clone())?.description;
            let curve = measure_curve(ctx, &behavior, &desc, &placements, &config)?;
            let stats = error_stats(&curve);
            means.push(stats.mean_error_pct);
            medians.push(stats.median_error_pct);
            gaps.push(best_placement_gap(&curve));
        }
        all_medians.extend(medians.clone());
        all_gaps.extend(gaps.clone());
        per_archetype_stats.push(ArchetypeStats {
            archetype: format!("{archetype:?}"),
            samples: per_archetype,
            mean_error_pct: mean(&means),
            median_error_pct: median(&mut medians),
            mean_gap_pct: mean(&gaps),
        });
    }
    Ok(RobustnessResult {
        machine: ctx.description.machine.clone(),
        per_archetype: per_archetype_stats,
        overall_median_error_pct: median(&mut all_medians),
        overall_mean_gap_pct: mean(&all_gaps),
    })
}

/// Renders the robustness table.
pub fn render(result: &RobustnessResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Robustness over random workloads on {} (beyond the paper)",
        result.machine
    );
    let _ = writeln!(
        out,
        "{:<16} {:>8} {:>12} {:>14} {:>10}",
        "archetype", "samples", "mean err%", "median err%", "mean gap%"
    );
    for s in &result.per_archetype {
        let _ = writeln!(
            out,
            "{:<16} {:>8} {:>12.2} {:>14.2} {:>10.2}",
            s.archetype, s.samples, s.mean_error_pct, s.median_error_pct, s.mean_gap_pct
        );
    }
    let _ = writeln!(
        out,
        "overall: median error {:.2}%, mean best-gap {:.2}%",
        result.overall_median_error_pct, result.overall_mean_gap_pct
    );
    out
}
