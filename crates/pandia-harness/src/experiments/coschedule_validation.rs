//! Validation of the multi-workload extension (beyond the paper).
//!
//! For pairs of workloads co-scheduled under several joint placements,
//! compare each job's joint *prediction* with its joint *measurement* on
//! the ground-truth simulator — the §8 claim quantified.

use pandia_core::{predict_jobs, PandiaError, PredictorConfig, WorkloadDescription};
use pandia_sim::Behavior;
use pandia_topology::{HasShape, MultiRunRequest, Placement, Platform, SocketId};
use serde::{Deserialize, Serialize};

use crate::context::MachineContext;

use super::ExpResult;

/// One job's outcome within one joint placement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JointOutcome {
    /// Pairing label, e.g. `"CG+EP"`.
    pub pairing: String,
    /// Joint-placement label.
    pub layout: String,
    /// Job name.
    pub workload: String,
    /// Predicted completion time under the joint placement.
    pub predicted: f64,
    /// Measured completion time under the joint placement.
    pub measured: f64,
    /// `|predicted - measured| / measured` in percent.
    pub error_pct: f64,
}

/// Results over all pairings and layouts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoScheduleValidation {
    /// Machine name.
    pub machine: String,
    /// Every (pairing, layout, job) outcome.
    pub outcomes: Vec<JointOutcome>,
}

impl CoScheduleValidation {
    /// Mean error across all outcomes.
    pub fn mean_error_pct(&self) -> f64 {
        crate::metrics::mean(&self.outcomes.iter().map(|o| o.error_pct).collect::<Vec<_>>())
    }

    /// Median error across all outcomes.
    pub fn median_error_pct(&self) -> f64 {
        crate::metrics::median(
            &mut self.outcomes.iter().map(|o| o.error_pct).collect::<Vec<_>>(),
        )
    }
}

/// The joint layouts exercised for each pair (per-socket carve-ups).
fn layouts(ctx: &MachineContext) -> ExpResult<Vec<(String, Placement, Placement)>> {
    let shape = ctx.description.shape();
    let cores = shape.cores_per_socket;
    let socket = |s: usize, n: usize, slot: usize| {
        Placement::new(
            &shape,
            (0..n).map(|c| shape.ctx(SocketId(s), c, slot)).collect::<Vec<_>>(),
        )
    };
    let half = cores / 2;
    Ok(vec![
        // One socket each.
        ("socket-each".to_string(), socket(0, cores, 0)?, socket(1, cores, 0)?),
        // Both share socket 0, half the cores each (second job uses the
        // upper cores via SMT slot 0 of cores half..).
        (
            "split-socket0".to_string(),
            socket(0, half, 0)?,
            Placement::new(
                &shape,
                (half..cores)
                    .map(|c| shape.ctx(SocketId(0), c, 0))
                    .collect::<Vec<_>>(),
            )?,
        ),
        // SMT siblings: job B on the second hardware thread of the same
        // cores as job A.
        ("smt-siblings".to_string(), socket(0, half, 0)?, socket(0, half, 1)?),
    ])
}

/// Runs the validation for the given workload pairs.
pub fn run(
    ctx: &mut MachineContext,
    pairs: &[(&str, &str)],
) -> ExpResult<CoScheduleValidation> {
    let _span = pandia_obs::span("harness", "coschedule_validation");
    let config = PredictorConfig::default();
    let mut outcomes = Vec::new();
    for &(a, b) in pairs {
        let wa = pandia_workloads::by_name(a).ok_or_else(|| PandiaError::Mismatch {
            reason: format!("unknown workload {a}"),
        })?;
        let wb = pandia_workloads::by_name(b).ok_or_else(|| PandiaError::Mismatch {
            reason: format!("unknown workload {b}"),
        })?;
        let da = ctx.profile(&wa)?.description;
        let db = ctx.profile(&wb)?.description;
        for (layout, pa, pb) in layouts(ctx)? {
            outcomes.extend(validate_one(
                ctx,
                &config,
                (&wa.behavior, &da, &pa),
                (&wb.behavior, &db, &pb),
                &format!("{a}+{b}"),
                &layout,
            )?);
        }
    }
    Ok(CoScheduleValidation { machine: ctx.description.machine.clone(), outcomes })
}

fn validate_one(
    ctx: &mut MachineContext,
    config: &PredictorConfig,
    a: (&Behavior, &WorkloadDescription, &Placement),
    b: (&Behavior, &WorkloadDescription, &Placement),
    pairing: &str,
    layout: &str,
) -> ExpResult<Vec<JointOutcome>> {
    let (ba, da, pa) = a;
    let (bb, db, pb) = b;
    let predictions =
        predict_jobs(&ctx.description, &[(da, pa), (db, pb)], config)?;
    let measured = ctx.platform.run_multi(&MultiRunRequest::new(vec![
        (ba.clone(), pa.clone()),
        (bb.clone(), pb.clone()),
    ]))?;
    Ok(predictions
        .iter()
        .zip(&measured)
        .zip([da.name.clone(), db.name.clone()])
        .map(|((pred, meas), workload)| JointOutcome {
            pairing: pairing.to_string(),
            layout: layout.to_string(),
            workload,
            predicted: pred.predicted_time,
            measured: meas.elapsed,
            error_pct: 100.0 * (pred.predicted_time - meas.elapsed).abs() / meas.elapsed,
        })
        .collect())
}

/// Renders the validation as a text table.
pub fn render(result: &CoScheduleValidation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Co-scheduling validation on {} (paper §8 extension)", result.machine);
    let _ = writeln!(
        out,
        "{:<12} {:<14} {:<10} {:>10} {:>10} {:>8}",
        "pairing", "layout", "job", "predicted", "measured", "err%"
    );
    for o in &result.outcomes {
        let _ = writeln!(
            out,
            "{:<12} {:<14} {:<10} {:>10.3} {:>10.3} {:>8.2}",
            o.pairing, o.layout, o.workload, o.predicted, o.measured, o.error_pct
        );
    }
    let _ = writeln!(
        out,
        "mean error {:.2}%, median {:.2}% over {} outcomes",
        result.mean_error_pct(),
        result.median_error_pct(),
        result.outcomes.len()
    );
    out
}
