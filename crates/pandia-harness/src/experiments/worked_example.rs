//! The paper's worked example (Figures 3-9): the toy two-socket machine,
//! the `[7, 40]` workload, and the three-thread prediction that converges
//! to a speedup of ≈ 1.005.

use pandia_core::{predict, MachineDescription, Prediction, PredictorConfig, WorkloadDescription};
use pandia_topology::{CtxId, MachineShape, Placement};

use super::ExpResult;

/// The outcome of the worked example.
#[derive(Debug, Clone)]
pub struct WorkedExample {
    /// The toy machine description of Figure 3.
    pub machine: MachineDescription,
    /// The workload description of Figure 4.
    pub workload: WorkloadDescription,
    /// Prediction after exactly one iteration (Figure 7).
    pub first_iteration: Prediction,
    /// Converged prediction (§5.5: speedup ≈ 1.005).
    pub converged: Prediction,
}

/// Builds the machine of Figure 3 extended with two SMT slots per core so
/// threads U and V can share a core as in the §5 example.
pub fn example_machine() -> MachineDescription {
    let mut m = MachineDescription::toy();
    m.shape = MachineShape { sockets: 2, cores_per_socket: 2, threads_per_core: 2 };
    m
}

/// The example placement: U and V share core 0 of socket 0; W runs alone
/// on socket 1.
pub fn example_placement(machine: &MachineDescription) -> ExpResult<Placement> {
    Ok(Placement::new(machine, vec![CtxId(0), CtxId(1), CtxId(4)])?)
}

/// Runs the worked example.
pub fn run() -> ExpResult<WorkedExample> {
    let _span = pandia_obs::span("harness", "worked_example");
    let machine = example_machine();
    let workload = WorkloadDescription::example();
    let placement = example_placement(&machine)?;
    let one_iter = PredictorConfig { max_iterations: 1, tolerance: 0.0, dampen_after: 100 };
    let first_iteration = predict(&machine, &workload, &placement, &one_iter)?;
    let converged = predict(&machine, &workload, &placement, &PredictorConfig::default())?;
    Ok(WorkedExample { machine, workload, first_iteration, converged })
}

/// Renders the example as the text analogue of Figures 7 and 9.
pub fn render(example: &WorkedExample) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Worked example (paper §5, Figures 3-9)");
    let _ = writeln!(out, "machine: {}", example.machine.machine);
    let w = &example.workload;
    let _ = writeln!(
        out,
        "workload: d = [instr {}, dram {:?}], p = {}, os = {}, l = {}, b = {}",
        w.demand.instr,
        w.demand.dram,
        w.parallel_fraction,
        w.inter_socket_overhead,
        w.load_balance,
        w.burstiness
    );
    let p = &example.first_iteration;
    let _ = writeln!(out, "\nAfter the first iteration (cf. Figure 7e):");
    let _ = writeln!(
        out,
        "{:<8} {:>10} {:>8} {:>8} {:>9} {:>12}",
        "thread", "resource", "comm", "lb", "slowdown", "utilization"
    );
    for (name, t) in ["U", "V", "W"].iter().zip(&p.threads) {
        let _ = writeln!(
            out,
            "{:<8} {:>10.2} {:>8.2} {:>8.2} {:>9.2} {:>12.2}",
            name,
            t.resource_slowdown,
            t.communication_penalty,
            t.load_balance_penalty,
            t.slowdown,
            t.utilization
        );
    }
    let c = &example.converged;
    let _ = writeln!(
        out,
        "\nConverged after {} iterations: predicted speedup {:.3} (paper: 1.005)",
        c.iterations, c.speedup
    );
    let _ = writeln!(
        out,
        "Amdahl bound {:.2}; the inter-socket link is nearly saturated by a single thread.",
        c.amdahl_speedup
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worked_example_matches_paper_numbers() {
        let ex = run().unwrap();
        let first = &ex.first_iteration;
        assert!((first.threads[0].slowdown - 2.87).abs() < 0.01);
        assert!((first.threads[2].slowdown - 2.47).abs() < 0.02);
        assert!((ex.converged.speedup - 1.005).abs() < 0.02);
        let text = render(&ex);
        assert!(text.contains("1.005"));
        assert!(text.contains('U') && text.contains('W'));
    }
}
