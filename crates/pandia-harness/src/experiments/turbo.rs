//! Figure 14: the effect of Turbo Boost on the instruction rate of a
//! CPU-bound loop as threads are added (1-36 one per core, 37-72 filling
//! the second SMT slots), under three configurations:
//!
//! * Turbo Boost enabled, no background load — frequency falls as cores
//!   wake up;
//! * Turbo Boost enabled, background load on otherwise-idle cores — the
//!   chip is pinned at its all-core frequency (the profiling methodology);
//! * Turbo Boost disabled — nominal frequency, slower than all-core boost
//!   even when every core is busy.

use pandia_core::PandiaError;
use pandia_topology::{CtxId, Placement, Platform, RunRequest, StressKind};

use crate::context::MachineContext;

use super::ExpResult;

/// One measured series of Figure 14.
#[derive(Debug, Clone)]
pub struct TurboSeries {
    /// Configuration label.
    pub label: String,
    /// Instruction rate at each thread count (index 0 = 1 thread).
    pub instr_rate: Vec<f64>,
}

/// All three series.
#[derive(Debug, Clone)]
pub struct TurboResult {
    /// The machine the experiment ran on.
    pub machine: String,
    /// Series in figure order.
    pub series: Vec<TurboSeries>,
}

/// The Figure 14 thread placement: threads 1..=cores go one per core
/// (socket-major); beyond that the second SMT slot of each core fills in
/// the same order.
fn figure14_placement(ctx: &MachineContext, n: usize) -> Result<Placement, PandiaError> {
    let shape = ctx.description.shape;
    let cores = shape.total_cores();
    let mut ctxs = Vec::with_capacity(n);
    for t in 0..n {
        let (core, slot) = if t < cores { (t, 0) } else { (t - cores, 1) };
        ctxs.push(CtxId(core * shape.threads_per_core + slot));
    }
    Ok(Placement::new(&shape, ctxs)?)
}

/// Runs the Figure 14 experiment on a context (the paper uses the X5-2's
/// Xeon E5-2699 v3).
pub fn run(ctx: &mut MachineContext) -> ExpResult<TurboResult> {
    let _span = pandia_obs::span("harness", "turbo");
    let configs = [
        ("Turbo Boost enabled, no background load", true, false),
        ("Turbo Boost enabled, background load present", true, true),
        ("Turbo Boost disabled, no background load", false, false),
    ];
    let max_threads = ctx.description.shape.total_contexts();
    let workload = ctx.platform.stress_workload(StressKind::Cpu);
    let mut series = Vec::new();
    for (lane, (label, turbo, background)) in configs.into_iter().enumerate() {
        let mut rates = Vec::with_capacity(max_threads);
        for n in 1..=max_threads {
            let placement = figure14_placement(ctx, n)?;
            let mut req = RunRequest::new(workload.clone(), placement);
            req.turbo = turbo;
            req.fill_background = background;
            req.seed = n as u64;
            let result = ctx.platform.run(&req)?;
            rates.push(result.counters.instructions / result.elapsed);
        }
        // With telemetry installed, re-run the fully-occupied point with
        // segment tracing and bridge it onto the sim-time track, one lane
        // per configuration. Result files are unaffected.
        if pandia_obs::enabled() {
            let mut req = RunRequest::new(workload.clone(), figure14_placement(ctx, max_threads)?);
            req.turbo = turbo;
            req.fill_background = background;
            req.seed = max_threads as u64;
            let (_, trace) = ctx.platform.run_traced(&req)?;
            trace.emit_telemetry(lane as u32, label);
        }
        series.push(TurboSeries { label: label.to_string(), instr_rate: rates });
    }
    Ok(TurboResult { machine: ctx.description.machine.clone(), series })
}

/// Renders the three series as CSV.
pub fn csv(result: &TurboResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "threads");
    for s in &result.series {
        let _ = write!(out, ",\"{}\"", s.label);
    }
    let _ = writeln!(out);
    let n = result.series.first().map(|s| s.instr_rate.len()).unwrap_or(0);
    for i in 0..n {
        let _ = write!(out, "{}", i + 1);
        for s in &result.series {
            let _ = write!(out, ",{:.4}", s.instr_rate[i]);
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure14_shape_holds_on_x3_2() {
        // Use the smaller machine to keep the test fast; the qualitative
        // shape is machine-independent.
        let mut ctx = MachineContext::x3_2().unwrap();
        let r = run(&mut ctx).unwrap();
        assert_eq!(r.series.len(), 3);
        let boost = &r.series[0].instr_rate;
        let background = &r.series[1].instr_rate;
        let disabled = &r.series[2].instr_rate;
        let cores = ctx.description.shape.total_cores();

        // With boost and an idle machine, a single thread runs faster than
        // with background load or with boost disabled.
        assert!(boost[0] > background[0] * 1.05, "single-thread boost visible");
        assert!(background[0] > disabled[0] * 1.05, "all-core boost beats nominal");
        // At full core occupancy, boost (any variant) still beats nominal.
        assert!(boost[cores - 1] > disabled[cores - 1] * 1.05);
        // With background fill, the rate is essentially linear in the
        // thread count up to the core count.
        let per_thread_1 = background[0];
        let per_thread_full = background[cores - 1] / cores as f64;
        assert!((per_thread_1 - per_thread_full).abs() / per_thread_1 < 0.05);
        // The SMT region (threads > cores) gains less per thread.
        let total = ctx.description.shape.total_contexts();
        let smt_gain = boost[total - 1] - boost[cores - 1];
        let core_gain = boost[cores - 1] - boost[0];
        assert!(
            smt_gain < core_gain * 0.5,
            "SMT region gain {smt_gain} vs core region gain {core_gain}"
        );
    }
}
