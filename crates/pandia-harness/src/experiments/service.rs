//! Figure 16 (beyond the paper): the placement service under load.
//!
//! `pandiad` turns Pandia's batch pipeline into an event loop; this
//! experiment measures what that costs and what the incremental fleet
//! scheduler buys. For each stream length it replays the identical
//! seeded submission/completion stream twice — once with the
//! incremental delta path (memoized machine re-solves) and once in
//! from-scratch batch-oracle mode — asserting the transcripts are
//! byte-identical (the modes may only differ in *work*, never in
//! *answers*), and reports per-event wall latency percentiles, solve
//! counts, and the fraction of machine re-solves the memo absorbed.

use std::time::Instant;

use pandia_core::ExecContext;
use pandia_daemon::{generate_events, Daemon, DaemonConfig, FleetPreset};
use serde::{Deserialize, Serialize};

use super::ExpResult;
use pandia_core::PandiaError;

/// Default stream lengths swept by the experiment.
pub const EVENT_COUNTS: [usize; 3] = [250, 500, 1000];

/// One (stream length, mode) measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceCell {
    /// Events replayed.
    pub events: usize,
    /// `"incremental"` or `"batch"`.
    pub mode: String,
    /// Machine co-schedules computed.
    pub resolves: u64,
    /// Machine co-schedules answered from the memo.
    pub skipped: u64,
    /// `skipped / (resolves + skipped)`.
    pub skip_ratio: f64,
    /// Median per-event wall latency (microseconds).
    pub p50_us: f64,
    /// 99th-percentile per-event wall latency (microseconds).
    pub p99_us: f64,
    /// Jobs completed over the stream.
    pub completed: u64,
    /// Final fleet makespan.
    pub makespan: f64,
}

/// Full service-load results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceResult {
    /// Synthetic fleet size.
    pub machines: usize,
    /// Stream seed.
    pub seed: u64,
    /// One cell per (stream length, mode), incremental before batch.
    pub cells: Vec<ServiceCell>,
}

/// A percentile (by nearest-rank) of an unsorted sample, in place.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// Replays one stream through a fresh daemon, timing each event.
fn replay(
    preset: &FleetPreset,
    exec: &ExecContext,
    events: &[pandia_daemon::Event],
    seed: u64,
    incremental: bool,
) -> ExpResult<(Daemon, Vec<f64>)> {
    let config = DaemonConfig { seed, incremental, exec: exec.clone(), ..DaemonConfig::default() };
    let mut daemon = Daemon::new(preset.machines.clone(), preset.catalog.clone(), config)?;
    let mut latencies = Vec::with_capacity(events.len());
    for event in events {
        let start = Instant::now();
        daemon.apply(event)?;
        latencies.push(start.elapsed().as_secs_f64() * 1e6);
    }
    Ok((daemon, latencies))
}

/// Runs the sweep: each stream length replayed in both modes over a
/// synthetic fleet of `machines` machines.
pub fn run(
    exec: &ExecContext,
    machines: usize,
    event_counts: &[usize],
    seed: u64,
) -> ExpResult<ServiceResult> {
    let _span = pandia_obs::span("harness", "fig16_service").arg("machines", machines);
    let preset = pandia_daemon::synthetic(machines);
    let classes: Vec<&str> = preset.catalog.keys().map(String::as_str).collect();
    let mut cells = Vec::new();
    for &n in event_counts {
        let events = generate_events(seed, n, &classes);
        let (inc, mut inc_lat) = replay(&preset, exec, &events, seed, true)?;
        let (batch, mut batch_lat) = replay(&preset, exec, &events, seed, false)?;
        if inc.transcript() != batch.transcript() {
            return Err(PandiaError::Mismatch {
                reason: format!(
                    "incremental and batch transcripts diverge over {n} events"
                ),
            });
        }
        for (daemon, latencies, mode) in
            [(&inc, &mut inc_lat, "incremental"), (&batch, &mut batch_lat, "batch")]
        {
            let stats = daemon.fleet_stats();
            let total = stats.resolves + stats.resolves_skipped;
            cells.push(ServiceCell {
                events: n,
                mode: mode.to_string(),
                resolves: stats.resolves,
                skipped: stats.resolves_skipped,
                skip_ratio: stats.resolves_skipped as f64 / total.max(1) as f64,
                p50_us: percentile(latencies, 50.0),
                p99_us: percentile(latencies, 99.0),
                completed: daemon.audit().completed,
                makespan: daemon.schedule()?.makespan,
            });
        }
    }
    Ok(ServiceResult { machines, seed, cells })
}

/// Renders the result as an aligned text table.
pub fn render(result: &ServiceResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "placement service under load ({} synthetic machines, seed {:#x})\n\n",
        result.machines, result.seed
    ));
    out.push_str(&format!(
        "{:>7} {:<12} {:>9} {:>9} {:>7} {:>10} {:>10} {:>10}\n",
        "events", "mode", "resolves", "skipped", "skip%", "p50(us)", "p99(us)", "completed"
    ));
    for c in &result.cells {
        out.push_str(&format!(
            "{:>7} {:<12} {:>9} {:>9} {:>6.1}% {:>10.1} {:>10.1} {:>10}\n",
            c.events,
            c.mode,
            c.resolves,
            c.skipped,
            100.0 * c.skip_ratio,
            c.p50_us,
            c.p99_us,
            c.completed
        ));
    }
    out
}

/// Renders the result as CSV.
pub fn to_csv(result: &ServiceResult) -> String {
    let mut out =
        String::from("events,mode,resolves,skipped,skip_ratio,p50_us,p99_us,completed,makespan\n");
    for c in &result.cells {
        out.push_str(&format!(
            "{},{},{},{},{:.6},{:.1},{:.1},{},{:.6}\n",
            c.events,
            c.mode,
            c.resolves,
            c.skipped,
            c.skip_ratio,
            c.p50_us,
            c.p99_us,
            c.completed,
            c.makespan
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_incremental_skips_work() {
        let exec = ExecContext::serial();
        let result = run(&exec, 2, &[60], 0xF16).unwrap();
        assert_eq!(result.cells.len(), 2);
        let inc = &result.cells[0];
        let batch = &result.cells[1];
        assert_eq!(inc.mode, "incremental");
        assert_eq!(batch.mode, "batch");
        // Same stream, same answers...
        assert_eq!(inc.completed, batch.completed);
        assert_eq!(inc.makespan.to_bits(), batch.makespan.to_bits());
        // ...but the incremental mode does strictly less solving.
        assert!(inc.skipped > 0);
        assert_eq!(batch.skipped, 0);
        assert!(inc.resolves < batch.resolves);
        let csv = to_csv(&result);
        assert!(csv.lines().count() == 3, "{csv}");
        assert!(render(&result).contains("incremental"));
    }
}
