//! Figure 13: Pandia at the edges of its assumptions.
//!
//! * 13a — a single-threaded version of the NPO join: only one thread is
//!   active, so the workload does not scale; Pandia's profiling detects
//!   the absence of scaling (the fitted parallel fraction collapses).
//! * 13b/13c — equake, whose reduction step grows the total work with the
//!   thread count, violating the fixed-work assumption: predictions stay
//!   good on the 16-core X3-2 but visibly degrade on the 36-core X5-2.

use pandia_core::PredictorConfig;
use pandia_sim::Behavior;
use pandia_topology::{CanonicalPlacement, RunRequest};
use pandia_workloads::{equake, npo_single_threaded};

use crate::{
    context::MachineContext,
    runner::{measure_curve, PlacementCurve},
};

use super::{Coverage, ExpResult};

/// Re-runs one representative placement with segment tracing and bridges
/// the result onto the telemetry sim-time track (lane per panel). A no-op
/// unless telemetry is installed, so ordinary runs pay nothing and the
/// emitted result files never change.
fn emit_sim_trace(
    ctx: &mut MachineContext,
    behavior: &Behavior,
    placements: &[CanonicalPlacement],
    lane: u32,
    label: &str,
) -> ExpResult<()> {
    if !pandia_obs::enabled() {
        return Ok(());
    }
    let Some(canonical) = placements.last() else {
        return Ok(());
    };
    let placement = canonical.instantiate(&ctx.spec)?;
    let (_, trace) = ctx.platform.run_traced(&RunRequest::new(behavior.clone(), placement))?;
    trace.emit_telemetry(lane, label);
    Ok(())
}

/// The three panels of Figure 13.
#[derive(Debug, Clone)]
pub struct LimitsResult {
    /// 13a: NPO-1T on the X3-2.
    pub npo_single: PlacementCurve,
    /// The parallel fraction Pandia fitted for NPO-1T (expected ≈ 0).
    pub npo_single_parallel_fraction: f64,
    /// 13b: equake on the X3-2.
    pub equake_x3: PlacementCurve,
    /// 13c: equake on the X5-2.
    pub equake_x5: PlacementCurve,
}

/// Runs all three panels.
pub fn run(coverage: Coverage) -> ExpResult<LimitsResult> {
    let _span = pandia_obs::span("harness", "limits");
    let config = PredictorConfig::default();

    let mut x3 = MachineContext::x3_2()?;
    let placements_x3 = coverage.placements(&x3);

    let npo1 = npo_single_threaded();
    let npo_profile = x3.profile(&npo1)?;
    let npo_single = measure_curve(
        &mut x3,
        &npo1.behavior,
        &npo_profile.description,
        &placements_x3,
        &config,
    )?;

    emit_sim_trace(&mut x3, &npo1.behavior, &placements_x3, 0, "fig13a npo-1t x3-2")?;

    let eq = equake();
    let eq_desc_x3 = x3.profile(&eq)?.description;
    let equake_x3 = measure_curve(&mut x3, &eq.behavior, &eq_desc_x3, &placements_x3, &config)?;
    emit_sim_trace(&mut x3, &eq.behavior, &placements_x3, 1, "fig13b equake x3-2")?;

    let mut x5 = MachineContext::x5_2()?;
    let placements_x5 = coverage.placements(&x5);
    let eq_desc_x5 = x5.profile(&eq)?.description;
    let equake_x5 = measure_curve(&mut x5, &eq.behavior, &eq_desc_x5, &placements_x5, &config)?;
    emit_sim_trace(&mut x5, &eq.behavior, &placements_x5, 2, "fig13c equake x5-2")?;

    Ok(LimitsResult {
        npo_single,
        npo_single_parallel_fraction: npo_profile.description.parallel_fraction,
        equake_x3,
        equake_x5,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::error_stats;

    #[test]
    #[ignore = "several minutes of simulation; run explicitly or via the fig13 binary"]
    fn equake_errors_grow_with_machine_size() {
        let r = run(Coverage::Quick).unwrap();
        let small = error_stats(&r.equake_x3).mean_error_pct;
        let large = error_stats(&r.equake_x5).mean_error_pct;
        assert!(large > small, "x5-2 error {large} should exceed x3-2 error {small}");
        assert!(r.npo_single_parallel_fraction < 0.2);
    }
}
