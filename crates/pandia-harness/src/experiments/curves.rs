//! Figures 1 and 10: measured vs predicted performance across the
//! placement space, per workload.

use pandia_core::PredictorConfig;
use pandia_topology::CanonicalPlacement;
use pandia_workloads::WorkloadEntry;

use crate::{
    context::MachineContext,
    runner::{measure_curve, PlacementCurve},
};

use super::ExpResult;

/// Profiles a workload and produces its measured-vs-predicted curve over
/// the given placements.
pub fn workload_curve(
    ctx: &mut MachineContext,
    workload: &WorkloadEntry,
    placements: &[CanonicalPlacement],
) -> ExpResult<PlacementCurve> {
    let profile = ctx.profile(workload)?;
    measure_curve(
        ctx,
        &workload.behavior,
        &profile.description,
        placements,
        &PredictorConfig::default(),
    )
}

/// Runs the full Figure 1 + Figure 10 set: one curve per workload.
pub fn all_curves(
    ctx: &mut MachineContext,
    workloads: &[WorkloadEntry],
    placements: &[CanonicalPlacement],
) -> ExpResult<Vec<PlacementCurve>> {
    let mut curves = Vec::with_capacity(workloads.len());
    for w in workloads {
        curves.push(workload_curve(ctx, w, placements)?);
    }
    Ok(curves)
}
