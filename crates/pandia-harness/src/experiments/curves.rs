//! Figures 1 and 10: measured vs predicted performance across the
//! placement space, per workload.

use pandia_core::{ExecContext, PredictorConfig};
use pandia_topology::CanonicalPlacement;
use pandia_workloads::WorkloadEntry;

use crate::{
    context::MachineContext,
    runner::{measure_curve_with, PlacementCurve},
};

use super::ExpResult;

/// Profiles a workload and produces its measured-vs-predicted curve over
/// the given placements.
pub fn workload_curve(
    ctx: &mut MachineContext,
    workload: &WorkloadEntry,
    placements: &[CanonicalPlacement],
) -> ExpResult<PlacementCurve> {
    workload_curve_with(&ExecContext::serial(), ctx, workload, placements)
}

/// [`workload_curve`] under an execution context (profiling stays
/// sequential; the curve's placements fan across the workers).
pub fn workload_curve_with(
    exec: &ExecContext,
    ctx: &MachineContext,
    workload: &WorkloadEntry,
    placements: &[CanonicalPlacement],
) -> ExpResult<PlacementCurve> {
    let mut local = ctx.clone();
    let profile = local.profile(workload)?;
    measure_curve_with(
        exec,
        &local,
        &workload.behavior,
        &profile.description,
        placements,
        &PredictorConfig::default(),
    )
}

/// Runs the full Figure 1 + Figure 10 set: one curve per workload.
pub fn all_curves(
    ctx: &mut MachineContext,
    workloads: &[WorkloadEntry],
    placements: &[CanonicalPlacement],
) -> ExpResult<Vec<PlacementCurve>> {
    all_curves_with(&ExecContext::serial(), ctx, workloads, placements)
}

/// [`all_curves`] under an execution context, parallel across workloads;
/// bit-identical to the serial sweep.
pub fn all_curves_with(
    exec: &ExecContext,
    ctx: &MachineContext,
    workloads: &[WorkloadEntry],
    placements: &[CanonicalPlacement],
) -> ExpResult<Vec<PlacementCurve>> {
    let _span = pandia_obs::span("harness", "all_curves").arg("workloads", workloads.len());
    let inner = exec.sequential();
    let evaluated = exec
        .parallel_map(workloads, |w| workload_curve_with(&inner, ctx, w, placements));
    evaluated.into_iter().collect()
}
