//! Figure 12: mean prediction errors on the four-socket Westmere X2-4,
//! split into three placement classes — at most two sockets active, at
//! most 20 cores active, and the whole machine.

use pandia_core::PredictorConfig;
use pandia_topology::{CanonicalPlacement, PlacementClass};

use crate::{
    context::MachineContext,
    metrics::{error_stats, ErrorStats},
    runner::measure_curve,
};

use super::{runnable_workloads, Coverage, ExpResult};

/// Results of the four-socket study: per-class, per-workload mean errors.
#[derive(Debug, Clone)]
pub struct FourSocketResult {
    /// Class labels in figure order.
    pub classes: Vec<String>,
    /// `stats[class][workload]`.
    pub stats: Vec<Vec<ErrorStats>>,
}

/// The paper's three placement classes on a 10-core-per-socket machine.
pub fn classes() -> Vec<(String, PlacementClass)> {
    vec![
        ("2 Socket".to_string(), PlacementClass::TwoSocket),
        ("20 Core".to_string(), PlacementClass::LimitedCores(20)),
        ("Whole machine".to_string(), PlacementClass::WholeMachine),
    ]
}

/// Runs the Figure 12 experiment on the X2-4 context.
///
/// Sort-Join is dropped automatically: it requires AVX, which the Westmere
/// processors lack (§6.2).
pub fn run(ctx: &mut MachineContext, coverage: Coverage) -> ExpResult<FourSocketResult> {
    let _span = pandia_obs::span("harness", "four_socket");
    let workloads = runnable_workloads(ctx, pandia_workloads::paper_suite());
    let base = coverage.placements(ctx);
    let class_list = classes();
    let per_class: Vec<Vec<CanonicalPlacement>> = class_list
        .iter()
        .map(|(_, class)| base.iter().filter(|p| class.contains(p)).cloned().collect())
        .collect();

    let mut stats: Vec<Vec<ErrorStats>> = vec![Vec::new(); class_list.len()];
    for w in &workloads {
        let desc = ctx.profile(w)?.description;
        for (k, placements) in per_class.iter().enumerate() {
            let curve = measure_curve(
                ctx,
                &w.behavior,
                &desc,
                placements,
                &PredictorConfig::default(),
            )?;
            stats[k].push(error_stats(&curve));
        }
    }
    Ok(FourSocketResult {
        classes: class_list.into_iter().map(|(name, _)| name).collect(),
        stats,
    })
}

/// Renders the result as a per-workload table of mean errors per class.
pub fn render(result: &FourSocketResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 12 — mean prediction errors on the 4-socket X2-4");
    let _ = write!(out, "{:<12}", "workload");
    for c in &result.classes {
        let _ = write!(out, " {c:>14}");
    }
    let _ = writeln!(out);
    if let Some(first) = result.stats.first() {
        for (i, s) in first.iter().enumerate() {
            let _ = write!(out, "{:<12}", s.workload);
            for class_stats in &result.stats {
                let _ = write!(out, " {:>13.2}%", class_stats[i].mean_error_pct);
            }
            let _ = writeln!(out);
        }
    }
    // Class-level means, matching the figure's rightmost "Mean" group.
    let _ = write!(out, "{:<12}", "Mean");
    for class_stats in &result.stats {
        let mean = crate::metrics::mean(
            &class_stats.iter().map(|s| s.mean_error_pct).collect::<Vec<_>>(),
        );
        let _ = write!(out, " {mean:>13.2}%");
    }
    let _ = writeln!(out);
    out
}
