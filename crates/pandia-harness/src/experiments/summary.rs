//! §6.1 headline statistics across the two-socket machines: the gap
//! between the fastest predicted and fastest measured placements, median
//! errors, and the peak-thread-count observation.

use crate::{
    context::MachineContext,
    metrics::{machine_summary, MachineSummary},
    runner::PlacementCurve,
};

use super::{errors, runnable_workloads, Coverage, ExpResult};

/// Summary plus supporting curves for one machine.
#[derive(Debug, Clone)]
pub struct MachineResult {
    /// §6.1 headline numbers.
    pub summary: MachineSummary,
    /// The per-workload curves behind them.
    pub curves: Vec<PlacementCurve>,
}

/// Runs the full evaluation on one machine and summarizes it.
pub fn evaluate_machine(ctx: &mut MachineContext, coverage: Coverage) -> ExpResult<MachineResult> {
    let _span = pandia_obs::span("harness", "summary");
    let workloads = runnable_workloads(ctx, pandia_workloads::paper_suite());
    let placements = coverage.placements(ctx);
    let bars = errors::error_bars(ctx, &workloads, &placements)?;
    let summary = machine_summary(&ctx.description.machine, &bars.curves);
    Ok(MachineResult { summary, curves: bars.curves })
}

/// Per-workload peak placements: workload name, best measured thread
/// count, and the machine's maximum (the §6.1 observation that peaks move
/// below the maximum thread count on larger machines; Sort-Join peaks at
/// 32 threads on the X5-2).
pub fn peak_threads(result: &MachineResult, max_threads: usize) -> Vec<(String, usize, usize)> {
    result
        .curves
        .iter()
        .map(|c| {
            let best = c.measured_best_placement().map(|p| p.n_threads).unwrap_or(0);
            (c.workload.clone(), best, max_threads)
        })
        .collect()
}
