//! Figure 17 (beyond the paper): the placement service under overload.
//!
//! Drives `pandiad` at arrival rates past what the fleet can absorb and
//! compares three queue policies over the *identical* seeded stream:
//!
//! * **naive** — the unbounded queue: every submission is admitted and
//!   waits forever, so backlog (and per-event work) grows with load;
//! * **admission** — a hard depth cap: submissions bounce at the door
//!   once `max_depth` jobs are queued, stale ones are deadline-shed;
//! * **shedding** — high-water overflow shedding with degraded-mode
//!   memo halving plus the deadline. (Because shedding restores the
//!   queue below the high-water mark after every event, admission
//!   rejections and overflow shedding are mutually exclusive per
//!   policy — hence two bounded modes.)
//!
//! For each arrival bias the experiment reports per-event wall-latency
//! percentiles, throughput (completed vs. rejected/shed), and the
//! bounded-memory counters (memo occupancy vs. capacity, evictions). It
//! also cross-checks the audit ledger against the queue state — every
//! submission event must be accounted for as completed, failed,
//! rejected, shed, or still live — so the overload counters can be
//! trusted downstream.

use std::time::Instant;

use pandia_core::ExecContext;
use pandia_daemon::{
    generate_events_with_rate, Daemon, DaemonConfig, FleetPreset, QueuePolicy, RetryPolicy,
};
use pandia_sim::FaultPlan;
use serde::{Deserialize, Serialize};

use super::ExpResult;
use pandia_core::PandiaError;

/// Arrival biases swept by the experiment: the fraction of stream events
/// that are submissions. 0.55 is the daemon's nominal rate; 0.90 is
/// roughly twice what a small fleet can drain.
pub const ARRIVAL_BIASES: [f64; 3] = [0.55, 0.75, 0.90];

/// Solve-memo capacity used for both modes — small enough that the
/// bounded-memory path (LRU eviction, degraded-mode halving) is actually
/// exercised at overload.
pub const MEMO_CAPACITY: usize = 64;

/// One (arrival bias, queue policy) measurement. `mode` is `"naive"`,
/// `"admission"`, or `"shedding"`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadCell {
    /// Fraction of events that are submissions.
    pub bias: f64,
    /// Queue policy the stream was replayed under.
    pub mode: String,
    /// Events replayed.
    pub events: usize,
    /// Jobs completed over the stream.
    pub completed: u64,
    /// Jobs that exhausted their placement attempts.
    pub failed: u64,
    /// Submissions bounced at admission (queue full).
    pub rejected: u64,
    /// Queued jobs dropped by overflow/deadline shedding.
    pub shed: u64,
    /// Faulted placements that were re-queued with backoff.
    pub retries: u64,
    /// Queue depth when the stream ended.
    pub final_depth: usize,
    /// Whether the daemon ended the stream in degraded mode.
    pub degraded: bool,
    /// Median per-event wall latency (microseconds).
    pub p50_us: f64,
    /// 99th-percentile per-event wall latency (microseconds).
    pub p99_us: f64,
    /// Solve-memo entries when the stream ended.
    pub memo_len: usize,
    /// Solve-memo capacity when the stream ended (halved in degraded
    /// mode).
    pub memo_capacity: usize,
    /// Solve-memo LRU evictions over the stream.
    pub memo_evictions: u64,
}

/// Full overload-sweep results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadResult {
    /// Synthetic fleet size.
    pub machines: usize,
    /// Stream length per bias.
    pub events: usize,
    /// Stream seed.
    pub seed: u64,
    /// One cell per (bias, mode): naive, admission, shedding.
    pub cells: Vec<OverloadCell>,
}

/// A percentile (by nearest-rank) of an unsorted sample, in place.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

/// The admission-control policy: a hard depth cap plus a deadline (no
/// high-water shedding, so the queue can actually fill and reject).
pub fn admission_policy() -> QueuePolicy {
    QueuePolicy { max_depth: 12, deadline: Some(24), ..QueuePolicy::default() }
}

/// The backpressure policy: overflow shedding with degraded-mode
/// hysteresis plus the deadline, tuned for a small synthetic fleet.
pub fn shedding_policy() -> QueuePolicy {
    QueuePolicy { max_depth: 64, high_water: 8, deadline: Some(24) }
}

/// Replays one stream through a fresh daemon under `queue`, timing each
/// event, and cross-checks the audit ledger against the final queue
/// state before reporting.
fn replay(
    preset: &FleetPreset,
    exec: &ExecContext,
    events: &[pandia_daemon::Event],
    seed: u64,
    queue: QueuePolicy,
) -> ExpResult<(Daemon, Vec<f64>)> {
    let config = DaemonConfig {
        seed,
        exec: exec.clone(),
        faults: FaultPlan::with_intensity(0.5),
        queue,
        retry: RetryPolicy::default(),
        memo_capacity: MEMO_CAPACITY,
        ..DaemonConfig::default()
    };
    let mut daemon = Daemon::new(preset.machines.clone(), preset.catalog.clone(), config)?;
    let mut latencies = Vec::with_capacity(events.len());
    for event in events {
        let start = Instant::now();
        daemon.apply(event)?;
        latencies.push(start.elapsed().as_secs_f64() * 1e6);
    }
    reconcile(&daemon, events)?;
    Ok((daemon, latencies))
}

/// Every submission event must be accounted for: admitted submissions
/// end up completed, failed, shed, or still live (queued/running);
/// rejected ones bounced at the door. The memo must respect its cap.
fn reconcile(daemon: &Daemon, events: &[pandia_daemon::Event]) -> ExpResult<()> {
    let submissions = events
        .iter()
        .filter(|e| matches!(e, pandia_daemon::Event::Submit { .. }))
        .count() as u64;
    let audit = daemon.audit();
    let check = |ok: bool, reason: String| {
        if ok {
            Ok(())
        } else {
            Err(PandiaError::Mismatch { reason })
        }
    };
    check(
        audit.submitted + audit.rejected == submissions,
        format!(
            "admitted {} + rejected {} != {} submission events",
            audit.submitted, audit.rejected, submissions
        ),
    )?;
    let live = (daemon.queued() + daemon.running()) as u64;
    check(
        audit.completed + audit.failed + audit.shed + live == audit.submitted,
        format!(
            "completed {} + failed {} + shed {} + live {live} != admitted {}",
            audit.completed, audit.failed, audit.shed, audit.submitted
        ),
    )?;
    check(
        daemon.memo_len() <= daemon.memo_capacity(),
        format!("memo {} over capacity {}", daemon.memo_len(), daemon.memo_capacity()),
    )
}

/// Runs the sweep: each arrival bias replayed under both queue policies
/// over a synthetic fleet of `machines` machines.
pub fn run(
    exec: &ExecContext,
    machines: usize,
    events: usize,
    biases: &[f64],
    seed: u64,
) -> ExpResult<OverloadResult> {
    let _span = pandia_obs::span("harness", "fig17_overload").arg("machines", machines);
    let preset = pandia_daemon::synthetic(machines);
    let classes: Vec<&str> = preset.catalog.keys().map(String::as_str).collect();
    let mut cells = Vec::new();
    for &bias in biases {
        let stream = generate_events_with_rate(seed, events, &classes, bias);
        for (queue, mode) in [
            (QueuePolicy::default(), "naive"),
            (admission_policy(), "admission"),
            (shedding_policy(), "shedding"),
        ] {
            let (daemon, mut latencies) = replay(&preset, exec, &stream, seed, queue)?;
            let audit = daemon.audit();
            let stats = daemon.fleet_stats();
            cells.push(OverloadCell {
                bias,
                mode: mode.to_string(),
                events,
                completed: audit.completed,
                failed: audit.failed,
                rejected: audit.rejected,
                shed: audit.shed,
                retries: audit.retries,
                final_depth: daemon.queued(),
                degraded: daemon.degraded(),
                p50_us: percentile(&mut latencies, 50.0),
                p99_us: percentile(&mut latencies, 99.0),
                memo_len: daemon.memo_len(),
                memo_capacity: daemon.memo_capacity(),
                memo_evictions: stats.memo_evictions,
            });
        }
    }
    Ok(OverloadResult { machines, events, seed, cells })
}

/// Renders the result as an aligned text table.
pub fn render(result: &OverloadResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "placement service under overload ({} synthetic machines, {} events/stream, seed {:#x})\n\n",
        result.machines, result.events, result.seed
    ));
    out.push_str(&format!(
        "{:>5} {:<9} {:>5} {:>5} {:>5} {:>5} {:>6} {:>4} {:>10} {:>10} {:>9} {:>5}\n",
        "bias", "mode", "done", "fail", "rej", "shed", "depth", "deg", "p50(us)", "p99(us)",
        "memo", "evict"
    ));
    for c in &result.cells {
        out.push_str(&format!(
            "{:>5.2} {:<9} {:>5} {:>5} {:>5} {:>5} {:>6} {:>4} {:>10.1} {:>10.1} {:>4}/{:<4} {:>5}\n",
            c.bias,
            c.mode,
            c.completed,
            c.failed,
            c.rejected,
            c.shed,
            c.final_depth,
            if c.degraded { "yes" } else { "no" },
            c.p50_us,
            c.p99_us,
            c.memo_len,
            c.memo_capacity,
            c.memo_evictions
        ));
    }
    out
}

/// Renders the result as CSV.
pub fn to_csv(result: &OverloadResult) -> String {
    let mut out = String::from(
        "bias,mode,events,completed,failed,rejected,shed,retries,final_depth,degraded,\
         p50_us,p99_us,memo_len,memo_capacity,memo_evictions\n",
    );
    for c in &result.cells {
        out.push_str(&format!(
            "{:.2},{},{},{},{},{},{},{},{},{},{:.1},{:.1},{},{},{}\n",
            c.bias,
            c.mode,
            c.events,
            c.completed,
            c.failed,
            c.rejected,
            c.shed,
            c.retries,
            c.final_depth,
            c.degraded as u8,
            c.p50_us,
            c.p99_us,
            c.memo_len,
            c.memo_capacity,
            c.memo_evictions
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_sweep_sheds_and_stays_bounded() {
        let exec = ExecContext::serial();
        let result = run(&exec, 2, 250, &[0.90], 0xF17).unwrap();
        assert_eq!(result.cells.len(), 3);
        let naive = &result.cells[0];
        let admission = &result.cells[1];
        let shedding = &result.cells[2];
        assert_eq!(naive.mode, "naive");
        assert_eq!(admission.mode, "admission");
        assert_eq!(shedding.mode, "shedding");
        // The unbounded queue admits everything and lets backlog grow;
        // the bounded policies actually bounce and shed.
        assert_eq!(naive.rejected + naive.shed, 0, "{naive:?}");
        assert!(admission.rejected > 0, "{admission:?}");
        assert!(shedding.shed > 0, "{shedding:?}");
        assert!(admission.final_depth <= admission_policy().max_depth);
        assert!(shedding.final_depth <= shedding_policy().high_water + 1);
        assert!(naive.final_depth > shedding.final_depth, "{naive:?} vs {shedding:?}");
        // Bounded memory holds in every mode (reconcile() already
        // asserted memo_len <= capacity during the run).
        for c in &result.cells {
            assert!(c.memo_len <= MEMO_CAPACITY, "{c:?}");
        }
        let csv = to_csv(&result);
        assert_eq!(csv.lines().count(), 4, "{csv}");
        assert!(render(&result).contains("shedding"));
    }
}
