//! Figure 11: prediction error bars per workload, including the
//! cross-machine portability study (11c/11d).

use pandia_core::{predict, PredictorConfig, WorkloadDescription};
use pandia_topology::{CanonicalPlacement, HasShape, Platform, RunRequest};
use pandia_workloads::WorkloadEntry;

use crate::{
    context::MachineContext,
    metrics::{error_stats, machine_summary, ErrorStats, MachineSummary},
    runner::{measure_curve, CurvePoint, PlacementCurve},
};

use super::ExpResult;

/// Error bars for one machine (one panel of Figure 11).
#[derive(Debug, Clone)]
pub struct ErrorBars {
    /// Panel label, e.g. `"X5-2 (Haswell)"`.
    pub title: String,
    /// Per-workload statistics, in workload order.
    pub stats: Vec<ErrorStats>,
    /// The machine-level summary (§6.1 headline numbers).
    pub summary: MachineSummary,
    /// The underlying curves (reusable by other experiments).
    pub curves: Vec<PlacementCurve>,
}

/// Profiles every workload on the machine and computes its error bars
/// (Figure 11a/11b).
pub fn error_bars(
    ctx: &mut MachineContext,
    workloads: &[WorkloadEntry],
    placements: &[CanonicalPlacement],
) -> ExpResult<ErrorBars> {
    let mut curves = Vec::with_capacity(workloads.len());
    for w in workloads {
        let profile = ctx.profile(w)?;
        curves.push(measure_curve(
            ctx,
            &w.behavior,
            &profile.description,
            placements,
            &PredictorConfig::default(),
        )?);
    }
    finish(ctx.description.machine.clone(), curves)
}

/// The portability study (Figure 11c/11d): workload descriptions generated
/// on `source` are used to predict performance on `target`, whose own
/// measurements provide the ground truth.
pub fn portability(
    source: &mut MachineContext,
    target: &mut MachineContext,
    workloads: &[WorkloadEntry],
    target_placements: &[CanonicalPlacement],
) -> ExpResult<ErrorBars> {
    let mut curves = Vec::with_capacity(workloads.len());
    for w in workloads {
        let desc = source.profile(w)?.description;
        let desc = adapt_description(&desc, target);
        curves.push(measure_on(target, w, &desc, target_placements)?);
    }
    finish(
        format!(
            "{} descriptions on {}",
            source.description.machine, target.description.machine
        ),
        curves,
    )
}

/// Retargets a description's memory-node layout to the target machine.
///
/// The paper reuses descriptions otherwise unchanged: the absolute `t1`
/// still belongs to the source machine, so absolute predicted times are
/// not comparable across machines — only the normalized metrics this
/// study computes are.
fn adapt_description(
    desc: &WorkloadDescription,
    target: &MachineContext,
) -> WorkloadDescription {
    desc.retarget_sockets(target.description.shape.sockets)
}

fn measure_on(
    ctx: &mut MachineContext,
    workload: &WorkloadEntry,
    desc: &WorkloadDescription,
    placements: &[CanonicalPlacement],
) -> ExpResult<PlacementCurve> {
    let shape = ctx.description.shape();
    let mut points = Vec::with_capacity(placements.len());
    for canon in placements {
        let placement = canon.instantiate(&shape)?;
        let measured = ctx
            .platform
            .run(&RunRequest::new(workload.behavior.clone(), placement.clone()))?
            .elapsed;
        let predicted =
            predict(&ctx.description, desc, &placement, &PredictorConfig::default())?
                .predicted_time;
        points.push(CurvePoint {
            placement: canon.clone(),
            n_threads: placement.n_threads(),
            measured,
            predicted,
        });
    }
    Ok(PlacementCurve {
        workload: workload.name.to_string(),
        machine: ctx.description.machine.clone(),
        points,
    })
}

fn finish(title: String, curves: Vec<PlacementCurve>) -> ExpResult<ErrorBars> {
    let stats = curves.iter().map(error_stats).collect();
    let summary = machine_summary(&title, &curves);
    Ok(ErrorBars { title, stats, summary, curves })
}
