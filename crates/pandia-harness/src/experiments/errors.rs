//! Figure 11: prediction error bars per workload, including the
//! cross-machine portability study (11c/11d).

use pandia_core::{ExecContext, PredictSession, PredictorConfig, WorkloadDescription};
use pandia_topology::{CanonicalPlacement, HasShape, Platform, RunRequest};
use pandia_workloads::WorkloadEntry;

use crate::{
    context::MachineContext,
    metrics::{error_stats, machine_summary, ErrorStats, MachineSummary},
    runner::{measure_curve_with, CurvePoint, PlacementCurve},
};

use super::ExpResult;

/// Error bars for one machine (one panel of Figure 11).
#[derive(Debug, Clone)]
pub struct ErrorBars {
    /// Panel label, e.g. `"X5-2 (Haswell)"`.
    pub title: String,
    /// Per-workload statistics, in workload order.
    pub stats: Vec<ErrorStats>,
    /// The machine-level summary (§6.1 headline numbers).
    pub summary: MachineSummary,
    /// The underlying curves (reusable by other experiments).
    pub curves: Vec<PlacementCurve>,
}

/// Profiles every workload on the machine and computes its error bars
/// (Figure 11a/11b).
pub fn error_bars(
    ctx: &mut MachineContext,
    workloads: &[WorkloadEntry],
    placements: &[CanonicalPlacement],
) -> ExpResult<ErrorBars> {
    error_bars_with(&ExecContext::serial(), ctx, workloads, placements)
}

/// [`error_bars`] under an execution context: workloads are profiled and
/// measured across its workers, each against its own clone of the
/// machine context. The result is bit-identical to the serial sweep.
///
/// The inner per-workload curve runs on a one-worker view of the context
/// (sharing its cache) so the thread count stays bounded by `jobs`.
pub fn error_bars_with(
    exec: &ExecContext,
    ctx: &MachineContext,
    workloads: &[WorkloadEntry],
    placements: &[CanonicalPlacement],
) -> ExpResult<ErrorBars> {
    let _span = pandia_obs::span("harness", "error_bars").arg("workloads", workloads.len());
    let inner = exec.sequential();
    let evaluated = exec.parallel_map(workloads, |w| -> ExpResult<PlacementCurve> {
        let mut local = ctx.clone();
        let profile = local.profile(w)?;
        measure_curve_with(
            &inner,
            &local,
            &w.behavior,
            &profile.description,
            placements,
            &PredictorConfig::default(),
        )
    });
    let mut curves = Vec::with_capacity(evaluated.len());
    for curve in evaluated {
        curves.push(curve?);
    }
    finish(ctx.description.machine.clone(), curves)
}

/// The portability study (Figure 11c/11d): workload descriptions generated
/// on `source` are used to predict performance on `target`, whose own
/// measurements provide the ground truth.
pub fn portability(
    source: &mut MachineContext,
    target: &mut MachineContext,
    workloads: &[WorkloadEntry],
    target_placements: &[CanonicalPlacement],
) -> ExpResult<ErrorBars> {
    portability_with(&ExecContext::serial(), source, target, workloads, target_placements)
}

/// [`portability`] under an execution context, parallel across workloads;
/// bit-identical to the serial study.
pub fn portability_with(
    exec: &ExecContext,
    source: &MachineContext,
    target: &MachineContext,
    workloads: &[WorkloadEntry],
    target_placements: &[CanonicalPlacement],
) -> ExpResult<ErrorBars> {
    let _span = pandia_obs::span("harness", "portability").arg("workloads", workloads.len());
    let inner = exec.sequential();
    let evaluated = exec.parallel_map(workloads, |w| -> ExpResult<PlacementCurve> {
        let mut local_source = source.clone();
        let desc = local_source.profile(w)?.description;
        let desc = adapt_description(&desc, target);
        measure_on(&inner, target, w, &desc, target_placements)
    });
    let mut curves = Vec::with_capacity(evaluated.len());
    for curve in evaluated {
        curves.push(curve?);
    }
    finish(
        format!(
            "{} descriptions on {}",
            source.description.machine, target.description.machine
        ),
        curves,
    )
}

/// Retargets a description's memory-node layout to the target machine.
///
/// The paper reuses descriptions otherwise unchanged: the absolute `t1`
/// still belongs to the source machine, so absolute predicted times are
/// not comparable across machines — only the normalized metrics this
/// study computes are.
fn adapt_description(
    desc: &WorkloadDescription,
    target: &MachineContext,
) -> WorkloadDescription {
    desc.retarget_sockets(target.description.shape.sockets)
}

fn measure_on(
    exec: &ExecContext,
    ctx: &MachineContext,
    workload: &WorkloadEntry,
    desc: &WorkloadDescription,
    placements: &[CanonicalPlacement],
) -> ExpResult<PlacementCurve> {
    let shape = ctx.description.shape();
    let config = PredictorConfig::default();
    let session = PredictSession::new(exec, &ctx.description, desc, &config)?;
    let evaluated = exec.parallel_map_sized(
        placements,
        |canon| canon.total_threads() as f64,
        |canon| -> ExpResult<CurvePoint> {
            let placement = canon.instantiate(&shape)?;
            let mut platform = ctx.platform.clone();
            let measured = platform
                .run(&RunRequest::new(workload.behavior.clone(), placement.clone()))?
                .elapsed;
            let predicted = session.predict(&placement)?.predicted_time;
            Ok(CurvePoint {
                placement: canon.clone(),
                n_threads: placement.n_threads(),
                measured,
                predicted,
            })
        },
    );
    let mut points = Vec::with_capacity(evaluated.len());
    for point in evaluated {
        points.push(point?);
    }
    Ok(PlacementCurve {
        workload: workload.name.to_string(),
        machine: ctx.description.machine.clone(),
        points,
    })
}

fn finish(title: String, curves: Vec<PlacementCurve>) -> ExpResult<ErrorBars> {
    let stats = curves.iter().map(error_stats).collect();
    let summary = machine_summary(&title, &curves);
    Ok(ErrorBars { title, stats, summary, curves })
}
