//! Measured-versus-predicted placement curves (Figures 1, 10, 13).

use pandia_core::{ExecContext, PandiaError, PredictSession, PredictorConfig, WorkloadDescription};
use pandia_sim::Behavior;
use pandia_topology::{CanonicalPlacement, HasShape, Platform, RunRequest};
use serde::{Deserialize, Serialize};

use crate::context::MachineContext;

/// One placement's measured and predicted times.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// The placement.
    pub placement: CanonicalPlacement,
    /// Thread count.
    pub n_threads: usize,
    /// Measured execution time on the platform.
    pub measured: f64,
    /// Pandia's predicted execution time.
    pub predicted: f64,
}

/// A full measured-vs-predicted curve for one workload on one machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementCurve {
    /// Workload name.
    pub workload: String,
    /// Machine name.
    pub machine: String,
    /// One point per evaluated placement, in figure order.
    pub points: Vec<CurvePoint>,
}

impl PlacementCurve {
    /// Fastest measured time.
    pub fn best_measured(&self) -> f64 {
        self.points.iter().map(|p| p.measured).fold(f64::INFINITY, f64::min)
    }

    /// Fastest predicted time.
    pub fn best_predicted(&self) -> f64 {
        self.points.iter().map(|p| p.predicted).fold(f64::INFINITY, f64::min)
    }

    /// The figures plot performance normalized to the best measured
    /// performance: `best_measured / measured` per placement (1.0 = best).
    pub fn normalized_measured(&self) -> Vec<f64> {
        let best = self.best_measured();
        self.points.iter().map(|p| best / p.measured).collect()
    }

    /// Predicted performance normalized the same way (against the best
    /// *predicted* performance, as in the paper's per-line normalization).
    pub fn normalized_predicted(&self) -> Vec<f64> {
        let best = self.best_predicted();
        self.points.iter().map(|p| best / p.predicted).collect()
    }

    /// The placement Pandia would choose (fastest predicted).
    pub fn predicted_best_placement(&self) -> Option<&CurvePoint> {
        self.points
            .iter()
            .min_by(|a, b| a.predicted.total_cmp(&b.predicted))
    }

    /// The placement that actually ran fastest.
    pub fn measured_best_placement(&self) -> Option<&CurvePoint> {
        self.points
            .iter()
            .min_by(|a, b| a.measured.total_cmp(&b.measured))
    }
}

/// Measures and predicts a workload over a set of placements.
///
/// Placements the platform cannot run (e.g. AVX workloads on non-AVX
/// machines) propagate as errors; callers filter workloads beforehand.
pub fn measure_curve(
    ctx: &mut MachineContext,
    behavior: &Behavior,
    description: &WorkloadDescription,
    placements: &[CanonicalPlacement],
    config: &PredictorConfig,
) -> Result<PlacementCurve, PandiaError> {
    measure_curve_with(&ExecContext::serial(), ctx, behavior, description, placements, config)
}

/// [`measure_curve`] under an execution context: placements are measured
/// and predicted across its workers (each worker runs its own clone of
/// the simulator, whose runs are pure functions of the request), and
/// predictions are memoized in its cache. The curve is bit-identical to
/// the serial one.
pub fn measure_curve_with(
    exec: &ExecContext,
    ctx: &MachineContext,
    behavior: &Behavior,
    description: &WorkloadDescription,
    placements: &[CanonicalPlacement],
    config: &PredictorConfig,
) -> Result<PlacementCurve, PandiaError> {
    let _span = pandia_obs::span("harness", "measure_curve")
        .arg("workload", description.name.as_str())
        .arg("placements", placements.len());
    let shape = ctx.description.shape();
    let session = PredictSession::new(exec, &ctx.description, description, config)?;
    // A point's cost scales with its thread count (entity count sizes
    // the simulated run and the prediction), so it steers the chunk plan.
    let evaluated = exec.parallel_map_sized(
        placements,
        |canon| canon.total_threads() as f64,
        |canon| -> Result<CurvePoint, PandiaError> {
            let placement = canon.instantiate(&shape)?;
            let mut platform = ctx.platform.clone();
            let measured =
                platform.run(&RunRequest::new(behavior.clone(), placement.clone()))?.elapsed;
            let predicted = session.predict(&placement)?.predicted_time;
            Ok(CurvePoint {
                placement: canon.clone(),
                n_threads: placement.n_threads(),
                measured,
                predicted,
            })
        },
    );
    let mut points = Vec::with_capacity(evaluated.len());
    for point in evaluated {
        points.push(point?);
    }
    Ok(PlacementCurve {
        workload: description.name.clone(),
        machine: ctx.description.machine.clone(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_normalization_and_best_lookup() {
        let mk = |n: usize, measured: f64, predicted: f64| CurvePoint {
            placement: CanonicalPlacement::new(vec![vec![1; n]]),
            n_threads: n,
            measured,
            predicted,
        };
        let curve = PlacementCurve {
            workload: "w".into(),
            machine: "m".into(),
            points: vec![mk(1, 10.0, 11.0), mk(2, 5.0, 5.5), mk(4, 4.0, 6.0)],
        };
        assert_eq!(curve.best_measured(), 4.0);
        assert_eq!(curve.best_predicted(), 5.5);
        let nm = curve.normalized_measured();
        assert_eq!(nm[2], 1.0);
        assert!((nm[0] - 0.4).abs() < 1e-12);
        assert_eq!(curve.measured_best_placement().unwrap().n_threads, 4);
        assert_eq!(curve.predicted_best_placement().unwrap().n_threads, 2);
    }
}
