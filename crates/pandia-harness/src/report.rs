//! Plain-text and CSV emission of experiment results.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

use pandia_core::PandiaError;

use crate::{
    metrics::{ErrorStats, MachineSummary},
    runner::PlacementCurve,
};

/// Where result files are written (`results/` under the workspace root by
/// default, overridable with the `PANDIA_RESULTS_DIR` environment
/// variable).
pub fn results_dir() -> PathBuf {
    std::env::var_os("PANDIA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes a string to `results_dir()/name`, creating directories.
pub fn write_result(name: &str, contents: &str) -> Result<PathBuf, PandiaError> {
    let dir = results_dir();
    let path = dir.join(name);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(io_err)?;
    }
    fs::write(&path, contents).map_err(io_err)?;
    Ok(path)
}

fn io_err(e: std::io::Error) -> PandiaError {
    PandiaError::Serde { message: format!("io error: {e}") }
}

/// Renders a curve as CSV: placement, threads, measured, predicted, and
/// both normalized performance columns.
pub fn curve_csv(curve: &PlacementCurve) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "index,placement,threads,measured_time,predicted_time,normalized_measured,normalized_predicted"
    );
    let nm = curve.normalized_measured();
    let np = curve.normalized_predicted();
    for (i, p) in curve.points.iter().enumerate() {
        let _ = writeln!(
            out,
            "{i},\"{}\",{},{:.6},{:.6},{:.6},{:.6}",
            p.placement, p.n_threads, p.measured, p.predicted, nm[i], np[i]
        );
    }
    out
}

/// Renders per-workload error statistics as an aligned text table
/// (the content of Figure 11's bars).
pub fn error_table(title: &str, stats: &[ErrorStats]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<12} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "workload", "mean%", "median%", "offset-mean%", "offset-med%", "points"
    );
    for s in stats {
        let _ = writeln!(
            out,
            "{:<12} {:>10.2} {:>10.2} {:>12.2} {:>12.2} {:>8}",
            s.workload,
            s.mean_error_pct,
            s.median_error_pct,
            s.mean_offset_error_pct,
            s.median_offset_error_pct,
            s.placements
        );
    }
    out
}

/// Renders error statistics as CSV.
pub fn error_csv(stats: &[ErrorStats]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "workload,mean_pct,median_pct,offset_mean_pct,offset_median_pct,placements");
    for s in stats {
        let _ = writeln!(
            out,
            "{},{:.4},{:.4},{:.4},{:.4},{}",
            s.workload,
            s.mean_error_pct,
            s.median_error_pct,
            s.mean_offset_error_pct,
            s.median_offset_error_pct,
            s.placements
        );
    }
    out
}

/// Renders machine summaries (the §6.1 headline numbers).
pub fn summary_table(summaries: &[MachineSummary]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>14} {:>16} {:>12} {:>14} {:>18}",
        "machine", "best-gap mean%", "best-gap median%", "median err%", "median off%", "peak<max threads"
    );
    for s in summaries {
        let _ = writeln!(
            out,
            "{:<22} {:>14.2} {:>16.2} {:>12.2} {:>14.2} {:>17.0}%",
            s.machine,
            s.mean_best_gap_pct,
            s.median_best_gap_pct,
            s.median_error_pct,
            s.median_offset_error_pct,
            100.0 * s.frac_peak_below_max_threads
        );
    }
    out
}

/// Renders an ASCII scatter of normalized measured vs predicted
/// performance over the placement index — a terminal rendition of the
/// Figure 1/10 panels.
pub fn ascii_curve(curve: &PlacementCurve, width: usize, height: usize) -> String {
    let nm = curve.normalized_measured();
    let np = curve.normalized_predicted();
    let n = nm.len();
    if n == 0 {
        return String::from("(empty curve)\n");
    }
    let mut grid = vec![vec![b' '; width]; height];
    let place = |grid: &mut Vec<Vec<u8>>, i: usize, v: f64, ch: u8| {
        let x = i * (width - 1) / n.max(1);
        let y = ((1.0 - v.clamp(0.0, 1.0)) * (height - 1) as f64).round() as usize;
        let cell = &mut grid[y.min(height - 1)][x.min(width - 1)];
        // Overlap of measured and predicted renders as '#'.
        *cell = match (*cell, ch) {
            (b' ', c) => c,
            (a, c) if a == c => c,
            _ => b'#',
        };
    };
    for (i, &v) in nm.iter().enumerate() {
        place(&mut grid, i, v, b'.');
    }
    for (i, &v) in np.iter().enumerate() {
        place(&mut grid, i, v, b'o');
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} on {} — normalized performance ('.' measured, 'o' predicted, '#' both)",
        curve.workload, curve.machine
    );
    for row in grid {
        let _ = writeln!(out, "|{}", String::from_utf8_lossy(&row));
    }
    let _ = writeln!(out, "+{}", "-".repeat(width));
    out
}

/// Ensures a directory exists (for binaries writing multiple files).
pub fn ensure_dir(path: &Path) -> Result<(), PandiaError> {
    fs::create_dir_all(path).map_err(io_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::CurvePoint;
    use pandia_topology::CanonicalPlacement;

    fn small_curve() -> PlacementCurve {
        PlacementCurve {
            workload: "w".into(),
            machine: "m".into(),
            points: (1..=4)
                .map(|n| CurvePoint {
                    placement: CanonicalPlacement::new(vec![vec![1; n]]),
                    n_threads: n,
                    measured: 10.0 / n as f64,
                    predicted: 11.0 / n as f64,
                })
                .collect(),
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = curve_csv(&small_curve());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].starts_with("index,placement"));
        assert!(lines[1].contains("\"[1]\""));
    }

    #[test]
    fn ascii_curve_renders_fixed_dimensions() {
        let art = ascii_curve(&small_curve(), 40, 10);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 12); // title + 10 rows + axis
        assert!(lines[11].starts_with('+'));
        // Perfect relative predictions overlay: expect '#' marks.
        assert!(art.contains('#'));
    }

    #[test]
    fn tables_render_every_row() {
        let stats = vec![
            crate::metrics::error_stats(&small_curve()),
            crate::metrics::error_stats(&small_curve()),
        ];
        let table = error_table("test", &stats);
        assert_eq!(table.lines().count(), 4);
        let csv = error_csv(&stats);
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn write_result_respects_env_override() {
        let dir = std::env::temp_dir().join(format!("pandia-test-{}", std::process::id()));
        std::env::set_var("PANDIA_RESULTS_DIR", &dir);
        let path = write_result("sub/test.txt", "hello").unwrap();
        assert!(path.starts_with(&dir));
        assert_eq!(std::fs::read_to_string(path).unwrap(), "hello");
        std::env::remove_var("PANDIA_RESULTS_DIR");
        let _ = std::fs::remove_dir_all(dir);
    }
}
