//! The workload registry: 22 paper workloads plus the two special cases
//! of §6.3 (equake and single-threaded NPO).

use pandia_sim::{Behavior, BurstProfile, Scheduling, UnitDemand};
use pandia_topology::DataPlacement;

/// Benchmark suite a workload comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// NAS parallel benchmarks.
    Npb,
    /// SPEC OMP workloads.
    SpecOmp,
    /// In-memory graph analytics (Callisto-RTS).
    Graph,
    /// Main-memory join operators (Balkesen et al.).
    Join,
    /// Additional experiments from §6.3.
    Extra,
}

/// Whether a workload belongs to the development or evaluation set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalSet {
    /// Studied in detail while developing Pandia (BT, CG, IS, MD).
    Development,
    /// Added purely for evaluation.
    Evaluation,
    /// §6.3 special cases outside the 22-workload suite.
    Extra,
}

/// One registered workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadEntry {
    /// Short name as used in the paper's figures.
    pub name: &'static str,
    /// Originating suite.
    pub suite: Suite,
    /// Development/evaluation split.
    pub set: EvalSet,
    /// One-line description (matches the figure captions).
    pub description: &'static str,
    /// The ground-truth behavior driving the simulator.
    pub behavior: Behavior,
}

/// Compact constructor for workload behaviors.
#[expect(clippy::too_many_arguments)]
fn behavior(
    name: &str,
    total_work: f64,
    seq: f64,
    demand: UnitDemand,
    ws_mib: f64,
    burst: BurstProfile,
    dynamic_fraction: f64,
    comm: f64,
    data: DataPlacement,
) -> Behavior {
    Behavior {
        name: name.to_string(),
        total_work,
        seq_fraction: seq,
        demand,
        working_set_mib: ws_mib,
        burst,
        scheduling: match dynamic_fraction {
            f if f <= 0.0 => Scheduling::Static,
            f if f >= 1.0 => Scheduling::Dynamic,
            f => Scheduling::Partial { dynamic_fraction: f },
        },
        comm_factor: comm,
        intra_socket_comm: 0.08,
        data_placement: data,
        growth_per_thread: 0.0,
        active_threads: None,
        requires_avx: false,
    }
}

fn d(instr: f64, l1: f64, l2: f64, l3: f64, dram: f64) -> UnitDemand {
    UnitDemand { instr, l1, l2, l3, dram }
}

/// The NPO hash join entry, shared between [`paper_suite`] and the
/// single-threaded §6.3 variant in [`npo_single_threaded`].
fn npo_entry() -> WorkloadEntry {
    WorkloadEntry {
        name: "NPO",
        suite: Suite::Join,
        set: EvalSet::Evaluation,
        description: "No partitioning, optimized hash join",
        behavior: behavior(
            "NPO",
            25.0,
            0.015,
            d(2.5, 15.0, 7.0, 7.0, 8.0),
            300.0,
            BurstProfile::bursty(0.6, 1.3),
            0.9,
            0.002,
            DataPlacement::Interleave,
        ),
    }
}

/// The full 22-workload suite of §6, development set first.
pub fn paper_suite() -> Vec<WorkloadEntry> {
    // The paper controls memory placement with numactl during profiling
    // (§3.1) and its worked example measures DRAM demand "to each socket"
    // — i.e. interleaved data. The suite follows that methodology; the
    // Figure 13a experiment (NPO-1T) keeps first-touch placement to probe
    // memory-placement sensitivity.
    use DataPlacement::Interleave;
    let e = |name, suite, set, description, behavior| WorkloadEntry {
        name,
        suite,
        set,
        description,
        behavior,
    };
    vec![
        // --- Development set (studied while building Pandia). ---
        e(
            "BT",
            Suite::Npb,
            EvalSet::Development,
            "Block tri-diagonal solver (NPB)",
            behavior(
                "BT",
                45.0,
                0.005,
                d(6.5, 30.0, 8.0, 3.0, 2.5),
                40.0,
                BurstProfile::bursty(0.8, 1.2),
                0.2,
                0.002,
                Interleave,
            ),
        ),
        e(
            "CG",
            Suite::Npb,
            EvalSet::Development,
            "Conjugate gradient (NPB)",
            behavior(
                "CG",
                35.0,
                0.008,
                d(2.2, 18.0, 8.0, 6.0, 7.5),
                120.0,
                BurstProfile::bursty(0.6, 1.3),
                0.3,
                0.005,
                Interleave,
            ),
        ),
        e(
            "IS",
            Suite::Npb,
            EvalSet::Development,
            "Integer sort (NPB)",
            behavior(
                "IS",
                20.0,
                0.010,
                d(1.8, 14.0, 6.0, 5.0, 9.0),
                200.0,
                BurstProfile::bursty(0.45, 1.7),
                0.5,
                0.004,
                Interleave,
            ),
        ),
        e(
            "MD",
            Suite::SpecOmp,
            EvalSet::Development,
            "Molecular dynamics simulation",
            behavior(
                "MD",
                50.0,
                0.004,
                d(7.5, 35.0, 6.0, 2.0, 1.2),
                15.0,
                BurstProfile::bursty(0.85, 1.1),
                0.25,
                0.006,
                Interleave,
            ),
        ),
        // --- Evaluation set. ---
        e(
            "Applu",
            Suite::SpecOmp,
            EvalSet::Evaluation,
            "Parabolic/elliptic PDE solver (OMP)",
            behavior(
                "Applu",
                40.0,
                0.006,
                d(5.0, 26.0, 9.0, 3.5, 4.0),
                80.0,
                BurstProfile::bursty(0.75, 1.25),
                0.1,
                0.003,
                Interleave,
            ),
        ),
        e(
            "Apsi",
            Suite::SpecOmp,
            EvalSet::Evaluation,
            "Meteorology: pollutant distribution (OMP)",
            behavior(
                "Apsi",
                38.0,
                0.010,
                d(4.5, 22.0, 7.0, 2.5, 3.0),
                60.0,
                BurstProfile::bursty(0.8, 1.2),
                0.2,
                0.002,
                Interleave,
            ),
        ),
        e(
            "Art",
            Suite::SpecOmp,
            EvalSet::Evaluation,
            "Neural network simulation (OMP)",
            behavior(
                "Art",
                30.0,
                0.005,
                d(3.8, 20.0, 12.0, 8.0, 2.0),
                30.0,
                BurstProfile::bursty(0.7, 1.3),
                0.4,
                0.002,
                Interleave,
            ),
        ),
        e(
            "Bwaves",
            Suite::SpecOmp,
            EvalSet::Evaluation,
            "Blast wave simulation (OMP)",
            behavior(
                "Bwaves",
                42.0,
                0.004,
                d(3.0, 16.0, 7.0, 5.0, 8.5),
                250.0,
                BurstProfile::bursty(0.8, 1.15),
                0.15,
                0.003,
                Interleave,
            ),
        ),
        e(
            "EP",
            Suite::Npb,
            EvalSet::Evaluation,
            "Embarrassingly parallel (NPB)",
            behavior(
                "EP",
                30.0,
                0.001,
                d(8.0, 20.0, 1.0, 0.1, 0.05),
                0.5,
                BurstProfile::SMOOTH,
                1.0,
                0.0002,
                Interleave,
            ),
        ),
        e(
            "FMA-3D",
            Suite::SpecOmp,
            EvalSet::Evaluation,
            "Finite-element crash simulation (OMP)",
            behavior(
                "FMA-3D",
                48.0,
                0.012,
                d(5.5, 24.0, 8.0, 3.0, 3.5),
                90.0,
                BurstProfile::bursty(0.7, 1.3),
                0.3,
                0.004,
                Interleave,
            ),
        ),
        e(
            "FT",
            Suite::Npb,
            EvalSet::Evaluation,
            "Discrete 3D fast Fourier transform (NPB)",
            behavior(
                "FT",
                36.0,
                0.006,
                d(3.5, 18.0, 8.0, 5.0, 6.5),
                180.0,
                BurstProfile::bursty(0.55, 1.5),
                0.4,
                0.009,
                Interleave,
            ),
        ),
        e(
            "LU",
            Suite::Npb,
            EvalSet::Evaluation,
            "Lower-upper Gauss-Seidel solver (NPB)",
            behavior(
                "LU",
                44.0,
                0.008,
                d(5.8, 28.0, 9.0, 3.5, 3.8),
                70.0,
                BurstProfile::bursty(0.75, 1.2),
                0.1,
                0.004,
                Interleave,
            ),
        ),
        e(
            "MG",
            Suite::Npb,
            EvalSet::Evaluation,
            "Multi-grid on a sequence of meshes (NPB)",
            behavior(
                "MG",
                32.0,
                0.007,
                d(3.2, 17.0, 8.0, 5.5, 7.0),
                150.0,
                BurstProfile::bursty(0.65, 1.3),
                0.2,
                0.006,
                Interleave,
            ),
        ),
        npo_entry(),
        e(
            "PRH",
            Suite::Join,
            EvalSet::Evaluation,
            "Parallel radix histogram hash join",
            behavior(
                "PRH",
                26.0,
                0.020,
                d(3.0, 16.0, 7.0, 6.0, 7.5),
                250.0,
                BurstProfile::bursty(0.5, 1.6),
                0.8,
                0.003,
                Interleave,
            ),
        ),
        e(
            "PRHO",
            Suite::Join,
            EvalSet::Evaluation,
            "Parallel radix histogram optimized hash join",
            behavior(
                "PRHO",
                24.0,
                0.015,
                d(3.2, 17.0, 7.5, 6.0, 7.0),
                250.0,
                BurstProfile::bursty(0.5, 1.55),
                0.85,
                0.003,
                Interleave,
            ),
        ),
        e(
            "PRO",
            Suite::Join,
            EvalSet::Evaluation,
            "Parallel radix optimized hash join",
            behavior(
                "PRO",
                24.0,
                0.012,
                d(3.4, 18.0, 8.0, 5.5, 6.5),
                220.0,
                BurstProfile::bursty(0.55, 1.5),
                0.85,
                0.003,
                Interleave,
            ),
        ),
        e(
            "PageRank",
            Suite::Graph,
            EvalSet::Evaluation,
            "In-memory parallel PageRank (Callisto-RTS)",
            behavior(
                "PageRank",
                34.0,
                0.003,
                d(2.0, 14.0, 7.0, 8.0, 8.5),
                400.0,
                BurstProfile::bursty(0.6, 1.4),
                1.0,
                0.005,
                Interleave,
            ),
        ),
        e(
            "Sort-Join",
            Suite::Join,
            EvalSet::Evaluation,
            "In-memory sort-join (AVX)",
            {
                let mut b = behavior(
                    "Sort-Join",
                    28.0,
                    0.010,
                    d(8.5, 60.0, 15.0, 5.0, 5.5),
                    200.0,
                    BurstProfile::bursty(0.7, 1.3),
                    0.9,
                    0.003,
                    Interleave,
                );
                b.requires_avx = true;
                b
            },
        ),
        e(
            "SP",
            Suite::Npb,
            EvalSet::Evaluation,
            "Scalar penta-diagonal solver (NPB)",
            behavior(
                "SP",
                40.0,
                0.006,
                d(4.8, 24.0, 9.0, 4.0, 5.0),
                100.0,
                BurstProfile::bursty(0.7, 1.3),
                0.15,
                0.004,
                Interleave,
            ),
        ),
        e(
            "Swim",
            Suite::SpecOmp,
            EvalSet::Evaluation,
            "Shallow water modeling (OMP)",
            behavior(
                "Swim",
                35.0,
                0.003,
                d(2.4, 15.0, 8.0, 6.0, 9.5),
                350.0,
                BurstProfile::bursty(0.8, 1.2),
                0.2,
                0.002,
                Interleave,
            ),
        ),
        e(
            "Wupwise",
            Suite::SpecOmp,
            EvalSet::Evaluation,
            "Wuppertal Wilson fermion solver (OMP)",
            behavior(
                "Wupwise",
                46.0,
                0.005,
                d(6.0, 28.0, 8.0, 2.5, 3.0),
                50.0,
                BurstProfile::bursty(0.8, 1.2),
                0.35,
                0.003,
                Interleave,
            ),
        ),
    ]
}

/// Equake: a reduction step grows the total work with the thread count,
/// violating the fixed-work assumption (§6.3, Figure 13b-c).
pub fn equake() -> WorkloadEntry {
    let mut b = behavior(
        "equake",
        38.0,
        0.010,
        d(4.0, 20.0, 8.0, 3.0, 3.5),
        80.0,
        BurstProfile::bursty(0.75, 1.25),
        0.3,
        0.003,
        DataPlacement::Interleave,
    );
    b.growth_per_thread = 0.04;
    WorkloadEntry {
        name: "equake",
        suite: Suite::Extra,
        set: EvalSet::Extra,
        description: "Earthquake simulation with a growing reduction step (OMP)",
        behavior: b,
    }
}

/// Single-threaded NPO: one thread is active, the others stay idle after
/// initialization (§6.3, Figure 13a).
pub fn npo_single_threaded() -> WorkloadEntry {
    let mut b = npo_entry().behavior;
    b.name = "NPO-1T".into();
    b.active_threads = Some(1);
    b.data_placement = DataPlacement::FirstTouch;
    WorkloadEntry {
        name: "NPO-1T",
        suite: Suite::Extra,
        set: EvalSet::Extra,
        description: "NPO hash join with a single active thread",
        behavior: b,
    }
}

/// All workloads including the §6.3 extras.
pub fn all_workloads() -> Vec<WorkloadEntry> {
    let mut v = paper_suite();
    v.push(equake());
    v.push(npo_single_threaded());
    v
}

/// The four development workloads.
pub fn development_set() -> Vec<WorkloadEntry> {
    paper_suite().into_iter().filter(|w| w.set == EvalSet::Development).collect()
}

/// The eighteen evaluation workloads.
pub fn evaluation_set() -> Vec<WorkloadEntry> {
    paper_suite().into_iter().filter(|w| w.set == EvalSet::Evaluation).collect()
}

/// Looks up a workload by its figure name (case-insensitive).
pub fn by_name(name: &str) -> Option<WorkloadEntry> {
    all_workloads().into_iter().find(|w| w.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pandia_topology::MachineSpec;

    #[test]
    fn suite_has_exactly_22_workloads() {
        assert_eq!(paper_suite().len(), 22);
        assert_eq!(development_set().len(), 4);
        assert_eq!(evaluation_set().len(), 18);
        assert_eq!(all_workloads().len(), 24);
    }

    #[test]
    fn development_set_matches_paper() {
        let names: Vec<&str> = development_set().iter().map(|w| w.name).collect();
        assert_eq!(names, vec!["BT", "CG", "IS", "MD"]);
    }

    #[test]
    fn names_are_unique_and_behaviors_valid() {
        let all = all_workloads();
        let mut names: Vec<&str> = all.iter().map(|w| w.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate workload names");
        for w in &all {
            w.behavior.validate().unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(w.behavior.name, w.name);
        }
    }

    #[test]
    fn behaviors_are_distinct() {
        // NPO-1T intentionally shares NPO's demands; compare the paper
        // suite only.
        let all = paper_suite();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.behavior.demand, b.behavior.demand, "{} vs {}", a.name, b.name);
            }
        }
    }

    #[test]
    fn sort_join_requires_avx_and_only_sort_join() {
        for w in all_workloads() {
            assert_eq!(w.behavior.requires_avx, w.name == "Sort-Join", "{}", w.name);
        }
    }

    #[test]
    fn equake_violates_fixed_work_assumption() {
        let e = equake();
        assert!(e.behavior.growth_per_thread > 0.0);
        assert!(e.behavior.work_for_threads(36) > 2.0 * e.behavior.total_work);
        // Every paper-suite workload keeps total work constant.
        for w in paper_suite() {
            assert_eq!(w.behavior.growth_per_thread, 0.0, "{}", w.name);
        }
    }

    #[test]
    fn npo_1t_has_one_active_thread() {
        let w = npo_single_threaded();
        assert_eq!(w.behavior.active_threads, Some(1));
        assert_eq!(w.behavior.workers_of(16), 1);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(by_name("swim").is_some());
        assert!(by_name("SWIM").is_some());
        assert!(by_name("does-not-exist").is_none());
    }

    #[test]
    fn solo_demands_fit_the_smallest_evaluated_machine() {
        // Every workload must be runnable by one thread without exceeding
        // per-core capacities on the machines it runs on (otherwise the
        // "solo demand" framing is meaningless).
        for spec in MachineSpec::evaluation_machines() {
            for w in all_workloads() {
                if w.behavior.requires_avx && !spec.has_avx {
                    continue;
                }
                let demand = &w.behavior.demand;
                assert!(
                    demand.instr <= spec.core_ipc_rate * 1.0,
                    "{} instruction demand {} exceeds a core of {}",
                    w.name,
                    demand.instr,
                    spec.name
                );
                assert!(demand.l1 <= spec.l1_bw_per_core, "{} L1 on {}", w.name, spec.name);
                assert!(
                    demand.dram <= spec.dram_bw_per_socket,
                    "{} DRAM on {}",
                    w.name,
                    spec.name
                );
            }
        }
    }

    #[test]
    fn bandwidth_bound_and_compute_bound_classes_exist() {
        // The suite must span the contention spectrum for the evaluation
        // to be meaningful.
        let all = paper_suite();
        let bandwidth_bound =
            all.iter().filter(|w| w.behavior.demand.dram >= 7.0).count();
        let compute_bound = all
            .iter()
            .filter(|w| w.behavior.demand.instr >= 6.0 && w.behavior.demand.dram <= 3.0)
            .count();
        assert!(bandwidth_bound >= 5, "bandwidth-bound workloads: {bandwidth_bound}");
        assert!(compute_bound >= 3, "compute-bound workloads: {compute_bound}");
    }
}
