//! Behavioral specifications of the paper's evaluation workloads.
//!
//! The paper evaluates Pandia on 22 workloads: the NAS parallel benchmarks
//! (NPB), SPEC OMP workloads, in-memory graph analytics (PageRank over
//! Callisto-RTS), and main-memory hash-join operators from Balkesen et
//! al. — split into a 4-workload *development* set studied while building
//! Pandia (BT, CG, IS, MD) and an 18-workload *evaluation* set (§6).
//!
//! We do not ship the benchmark binaries; we ship their *behaviors*: each
//! entry parameterizes the ground-truth simulator with the workload's
//! externally observable characteristics — instruction and memory-
//! bandwidth intensity, working-set size, burstiness, scheduling
//! discipline, communication intensity, and critical-section density —
//! chosen to reflect the qualitative classes the paper reports (EP scales
//! near-perfectly, Swim/CG are bandwidth-bound, FT communicates heavily,
//! Sort-Join requires AVX and peaks below the maximum thread count on
//! large machines, equake violates the fixed-work assumption, and so on).
//!
//! Nothing in this crate is visible to Pandia: the library only ever
//! observes these workloads through platform runs.

pub mod generator;
pub mod registry;

pub use generator::{generate, generate_batch, Archetype};
pub use registry::{
    all_workloads, by_name, development_set, equake, evaluation_set, npo_single_threaded,
    paper_suite, EvalSet, Suite, WorkloadEntry,
};
