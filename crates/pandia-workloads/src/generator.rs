//! Randomized workload generation for robustness studies.
//!
//! The paper guards against overfitting by splitting its suite into 4
//! development and 18 evaluation workloads (§6). This module pushes the
//! same idea further: it samples *synthetic* workloads from archetype
//! distributions so the harness can measure prediction accuracy over
//! hundreds of behaviors nobody tuned the model against.

use pandia_sim::{Behavior, BurstProfile, Scheduling, UnitDemand};
use pandia_topology::DataPlacement;

/// Broad classes of parallel in-memory workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Archetype {
    /// High instruction demand, tiny working set, near-perfect scaling.
    ComputeBound,
    /// DRAM-saturating streaming with large working sets.
    BandwidthBound,
    /// Working set around the LLC size: placement shifts hit rates.
    CacheSensitive,
    /// Frequent inter-thread communication (reductions, transposes).
    Communicating,
    /// A mix of everything, moderately bursty.
    Balanced,
}

impl Archetype {
    /// All archetypes.
    pub const ALL: [Archetype; 5] = [
        Archetype::ComputeBound,
        Archetype::BandwidthBound,
        Archetype::CacheSensitive,
        Archetype::Communicating,
        Archetype::Balanced,
    ];
}

/// Deterministic xorshift generator (the workspace avoids pulling RNG
/// state into workload identity: a seed fully determines a workload).
#[derive(Debug, Clone)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Self(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + u * (hi - lo)
    }
}

/// Generates one synthetic workload of the given archetype.
///
/// The same `(archetype, seed)` pair always yields the same behavior.
pub fn generate(archetype: Archetype, seed: u64) -> Behavior {
    pandia_obs::count("workloads.generated", 1);
    let mut rng = Rng::new(seed ^ (archetype as u64).wrapping_mul(0xA5A5_A5A5));
    let name = format!("gen-{archetype:?}-{seed}");
    let (demand, ws, burst, comm, seq) = match archetype {
        Archetype::ComputeBound => (
            UnitDemand {
                instr: rng.range(5.0, 8.0),
                l1: rng.range(10.0, 40.0),
                l2: rng.range(1.0, 6.0),
                l3: rng.range(0.1, 1.5),
                dram: rng.range(0.05, 1.0),
            },
            rng.range(0.2, 8.0),
            BurstProfile::bursty(rng.range(0.7, 1.0), rng.range(1.0, 1.3)),
            rng.range(0.0, 0.002),
            rng.range(0.0, 0.01),
        ),
        Archetype::BandwidthBound => (
            UnitDemand {
                instr: rng.range(1.0, 3.5),
                l1: rng.range(8.0, 20.0),
                l2: rng.range(4.0, 9.0),
                l3: rng.range(3.0, 7.0),
                dram: rng.range(6.0, 9.5),
            },
            rng.range(120.0, 500.0),
            BurstProfile::bursty(rng.range(0.5, 0.9), rng.range(1.1, 1.5)),
            rng.range(0.0, 0.004),
            rng.range(0.0, 0.01),
        ),
        Archetype::CacheSensitive => (
            UnitDemand {
                instr: rng.range(2.5, 5.0),
                l1: rng.range(12.0, 25.0),
                l2: rng.range(6.0, 14.0),
                l3: rng.range(5.0, 9.0),
                dram: rng.range(1.0, 3.0),
            },
            rng.range(15.0, 60.0),
            BurstProfile::bursty(rng.range(0.6, 0.9), rng.range(1.1, 1.4)),
            rng.range(0.0, 0.003),
            rng.range(0.0, 0.012),
        ),
        Archetype::Communicating => (
            UnitDemand {
                instr: rng.range(3.0, 6.0),
                l1: rng.range(12.0, 30.0),
                l2: rng.range(4.0, 9.0),
                l3: rng.range(2.0, 6.0),
                dram: rng.range(2.0, 6.5),
            },
            rng.range(40.0, 250.0),
            BurstProfile::bursty(rng.range(0.5, 0.85), rng.range(1.2, 1.7)),
            rng.range(0.005, 0.012),
            rng.range(0.002, 0.02),
        ),
        Archetype::Balanced => (
            UnitDemand {
                instr: rng.range(3.0, 6.5),
                l1: rng.range(10.0, 35.0),
                l2: rng.range(3.0, 10.0),
                l3: rng.range(1.0, 6.0),
                dram: rng.range(1.0, 7.0),
            },
            rng.range(5.0, 300.0),
            BurstProfile::bursty(rng.range(0.4, 1.0), rng.range(1.0, 1.8)),
            rng.range(0.0, 0.008),
            rng.range(0.0, 0.015),
        ),
    };
    let dynamic_fraction = rng.range(0.0, 1.0);
    Behavior {
        name,
        total_work: rng.range(15.0, 60.0),
        seq_fraction: seq,
        demand,
        working_set_mib: ws,
        burst,
        scheduling: match dynamic_fraction {
            f if f < 0.15 => Scheduling::Static,
            f if f > 0.85 => Scheduling::Dynamic,
            f => Scheduling::Partial { dynamic_fraction: f },
        },
        comm_factor: comm,
        intra_socket_comm: 0.08,
        data_placement: DataPlacement::Interleave,
        growth_per_thread: 0.0,
        active_threads: None,
        requires_avx: false,
    }
}

/// Generates a mixed batch: `count` workloads cycling through archetypes.
pub fn generate_batch(count: usize, seed: u64) -> Vec<Behavior> {
    (0..count)
        .map(|i| generate(Archetype::ALL[i % Archetype::ALL.len()], seed.wrapping_add(i as u64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(Archetype::BandwidthBound, 7);
        let b = generate(Archetype::BandwidthBound, 7);
        assert_eq!(a, b);
        let c = generate(Archetype::BandwidthBound, 8);
        assert_ne!(a, c);
        let d = generate(Archetype::ComputeBound, 7);
        assert_ne!(a.demand, d.demand);
    }

    #[test]
    fn generated_workloads_validate_and_fit_machines() {
        for (i, b) in generate_batch(50, 42).iter().enumerate() {
            b.validate().unwrap_or_else(|e| panic!("workload {i}: {e}"));
            // Solo demands fit a core of the smallest machine.
            assert!(b.demand.instr < 9.0, "workload {i} instr {}", b.demand.instr);
            assert!(b.demand.dram < 10.0);
        }
    }

    #[test]
    fn archetypes_have_their_signatures() {
        let compute = generate(Archetype::ComputeBound, 1);
        let bandwidth = generate(Archetype::BandwidthBound, 1);
        let comm = generate(Archetype::Communicating, 1);
        assert!(compute.demand.instr > bandwidth.demand.instr);
        assert!(bandwidth.demand.dram > compute.demand.dram);
        assert!(comm.comm_factor >= 0.005);
        assert!(bandwidth.working_set_mib > compute.working_set_mib);
    }

    #[test]
    fn batch_cycles_archetypes() {
        let batch = generate_batch(10, 0);
        assert_eq!(batch.len(), 10);
        let mut names = std::collections::HashSet::new();
        for b in &batch {
            assert!(names.insert(b.name.clone()), "duplicate name {}", b.name);
        }
        assert!(batch[0].name.contains("ComputeBound"));
        assert!(batch[1].name.contains("BandwidthBound"));
    }
}
