//! Thread placements: pinning software threads to hardware contexts.
//!
//! Because the paper's machines are homogeneous (every core identical,
//! every chip identical, fully connected interconnect — §2.2), a placement
//! is fully characterized by *how many* threads sit on each core of each
//! socket, not *which* cores. [`CanonicalPlacement`] captures that
//! equivalence class; [`Placement`] is a concrete pinning of numbered
//! threads to numbered contexts, which is what actually runs.

use serde::{Deserialize, Serialize};

use crate::{
    error::TopologyError,
    ids::{CoreId, CtxId, SocketId, ThreadId},
    spec::{HasShape, MachineShape},
};

/// A fully resolved hardware context: socket, core-in-socket, SMT slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HwContext {
    /// Owning socket.
    pub socket: SocketId,
    /// Core index within the socket.
    pub core_in_socket: usize,
    /// SMT slot within the core.
    pub slot: usize,
}

/// A concrete assignment of software threads to hardware contexts.
///
/// Thread `i` of the workload is pinned to `contexts()[i]`. At most one
/// workload thread may occupy a hardware context (stress applications are
/// co-scheduled separately via [`crate::RunRequest`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    ctxs: Vec<CtxId>,
}

impl Placement {
    /// Creates a placement, validating it against the machine.
    pub fn new(shape: &impl HasShape, ctxs: Vec<CtxId>) -> Result<Self, TopologyError> {
        let spec: MachineShape = shape.shape();
        if ctxs.is_empty() {
            return Err(TopologyError::EmptyPlacement);
        }
        let total = spec.total_contexts();
        let mut used = vec![false; total];
        for &ctx in &ctxs {
            if ctx.0 >= total {
                return Err(TopologyError::ContextOutOfRange { ctx: ctx.0, total });
            }
            if used[ctx.0] {
                return Err(TopologyError::ContextOversubscribed { ctx: ctx.0 });
            }
            used[ctx.0] = true;
        }
        Ok(Self { ctxs })
    }

    /// Pins `n` threads one-per-core on socket 0, then socket 1, etc.,
    /// using only the first SMT slot of each core ("spread" strategy).
    pub fn spread(shape: &impl HasShape, n: usize) -> Result<Self, TopologyError> {
        let spec: MachineShape = shape.shape();
        let mut ctxs = Vec::with_capacity(n);
        'outer: for s in 0..spec.sockets {
            for c in 0..spec.cores_per_socket {
                if ctxs.len() == n {
                    break 'outer;
                }
                ctxs.push(spec.ctx(SocketId(s), c, 0));
            }
        }
        if ctxs.len() < n {
            return Err(TopologyError::CanonicalMismatch {
                reason: format!("{n} threads exceed one-per-core capacity"),
            });
        }
        Self::new(&spec, ctxs)
    }

    /// Pins `n` threads as tightly as possible: fill both SMT slots of core
    /// 0 of socket 0, then core 1, and so on ("pack" strategy).
    pub fn packed(shape: &impl HasShape, n: usize) -> Result<Self, TopologyError> {
        let spec: MachineShape = shape.shape();
        if n > spec.total_contexts() {
            return Err(TopologyError::CanonicalMismatch {
                reason: format!("{n} threads exceed machine capacity"),
            });
        }
        let ctxs = (0..n).map(CtxId).collect();
        Self::new(&spec, ctxs)
    }

    /// Number of software threads.
    pub fn n_threads(&self) -> usize {
        self.ctxs.len()
    }

    /// The pinned context of each thread, indexed by thread id.
    pub fn contexts(&self) -> &[CtxId] {
        &self.ctxs
    }

    /// Context of one thread.
    pub fn ctx_of(&self, t: ThreadId) -> CtxId {
        self.ctxs[t.0]
    }

    /// Number of workload threads on each global core.
    pub fn threads_per_core(&self, shape: &impl HasShape) -> Vec<usize> {
        let spec: MachineShape = shape.shape();
        let mut counts = vec![0usize; spec.total_cores()];
        for &ctx in &self.ctxs {
            counts[spec.core_of_ctx(ctx).0] += 1;
        }
        counts
    }

    /// Number of workload threads on each socket.
    pub fn threads_per_socket(&self, shape: &impl HasShape) -> Vec<usize> {
        let spec: MachineShape = shape.shape();
        let mut counts = vec![0usize; spec.sockets];
        for &ctx in &self.ctxs {
            counts[spec.socket_of_ctx(ctx).0] += 1;
        }
        counts
    }

    /// Number of *distinct cores* hosting at least one thread, per socket.
    /// This drives the Turbo Boost operating point.
    pub fn active_cores_per_socket(&self, shape: &impl HasShape) -> Vec<usize> {
        let spec: MachineShape = shape.shape();
        let per_core = self.threads_per_core(&spec);
        let mut active = vec![0usize; spec.sockets];
        for (c, &n) in per_core.iter().enumerate() {
            if n > 0 {
                active[spec.socket_of_core(CoreId(c)).0] += 1;
            }
        }
        active
    }

    /// Whether thread `t` shares its core with at least one other workload
    /// thread (triggers the core-burstiness penalty, paper §5.1).
    pub fn shares_core(&self, shape: &impl HasShape, t: ThreadId) -> bool {
        let spec: MachineShape = shape.shape();
        let my_core = spec.core_of_ctx(self.ctxs[t.0]);
        self.ctxs
            .iter()
            .enumerate()
            .any(|(i, &c)| i != t.0 && spec.core_of_ctx(c) == my_core)
    }

    /// Number of sockets hosting at least one thread.
    pub fn sockets_used(&self, shape: &impl HasShape) -> usize {
        self.threads_per_socket(shape).iter().filter(|&&n| n > 0).count()
    }

    /// Reduces this placement to its canonical equivalence class.
    pub fn canonicalize(&self, shape: &impl HasShape) -> CanonicalPlacement {
        let spec: MachineShape = shape.shape();
        let per_core = self.threads_per_core(&spec);
        let mut sockets: Vec<Vec<u8>> = Vec::with_capacity(spec.sockets);
        for s in 0..spec.sockets {
            let mut occ: Vec<u8> = (0..spec.cores_per_socket)
                .map(|c| per_core[s * spec.cores_per_socket + c] as u8)
                .filter(|&n| n > 0)
                .collect();
            occ.sort_unstable_by(|a, b| b.cmp(a));
            if !occ.is_empty() {
                sockets.push(occ);
            }
        }
        sockets.sort_by(|a, b| b.cmp(a));
        CanonicalPlacement { sockets }
    }
}

/// A placement equivalence class on a homogeneous machine.
///
/// `sockets[s]` lists the per-core thread counts of the occupied cores of
/// one socket, sorted descending; the socket list itself is also sorted
/// descending so equal placements have equal representations. Empty sockets
/// are represented by empty vectors (or trailing omitted entries).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CanonicalPlacement {
    /// Per-socket descending core occupancies.
    pub sockets: Vec<Vec<u8>>,
}

impl CanonicalPlacement {
    /// Builds a canonical placement from per-socket occupancy lists,
    /// normalizing the ordering.
    pub fn new(mut sockets: Vec<Vec<u8>>) -> Self {
        for occ in &mut sockets {
            occ.retain(|&n| n > 0);
            occ.sort_unstable_by(|a, b| b.cmp(a));
        }
        sockets.retain(|occ| !occ.is_empty());
        sockets.sort_by(|a, b| b.cmp(a));
        Self { sockets }
    }

    /// Total number of threads across all sockets.
    pub fn total_threads(&self) -> usize {
        self.sockets.iter().flat_map(|s| s.iter()).map(|&n| n as usize).sum()
    }

    /// Number of occupied sockets.
    pub fn sockets_used(&self) -> usize {
        self.sockets.len()
    }

    /// Number of occupied cores across all sockets.
    pub fn cores_used(&self) -> usize {
        self.sockets.iter().map(|s| s.len()).sum()
    }

    /// Sort key matching the x-axis ordering of the paper's Figures 1
    /// and 10: first by total thread count, then by the occupancy pattern.
    pub fn sort_key(&self) -> (usize, Vec<Vec<u8>>) {
        (self.total_threads(), self.sockets.clone())
    }

    /// Instantiates a concrete [`Placement`]: canonical socket `k` maps to
    /// physical socket `k`, occupied cores map to the lowest-numbered cores,
    /// and thread ids are assigned socket-major, core-major, slot-minor.
    pub fn instantiate(&self, shape: &impl HasShape) -> Result<Placement, TopologyError> {
        let spec: MachineShape = shape.shape();
        if self.sockets.len() > spec.sockets {
            return Err(TopologyError::CanonicalMismatch {
                reason: format!(
                    "placement uses {} sockets but machine has {}",
                    self.sockets.len(),
                    spec.sockets
                ),
            });
        }
        let mut ctxs = Vec::with_capacity(self.total_threads());
        for (s, occ) in self.sockets.iter().enumerate() {
            if occ.len() > spec.cores_per_socket {
                return Err(TopologyError::CanonicalMismatch {
                    reason: format!(
                        "socket occupies {} cores but machine has {} per socket",
                        occ.len(),
                        spec.cores_per_socket
                    ),
                });
            }
            for (c, &n) in occ.iter().enumerate() {
                if n as usize > spec.threads_per_core {
                    return Err(TopologyError::CanonicalMismatch {
                        reason: format!(
                            "core hosts {n} threads but machine supports {} per core",
                            spec.threads_per_core
                        ),
                    });
                }
                for slot in 0..n as usize {
                    ctxs.push(spec.ctx(SocketId(s), c, slot));
                }
            }
        }
        Placement::new(&spec, ctxs)
    }
}

impl core::fmt::Display for CanonicalPlacement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[")?;
        for (i, occ) in self.sockets.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            for (j, n) in occ.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{n}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;

    fn spec() -> MachineSpec {
        MachineSpec::x3_2()
    }

    #[test]
    fn new_rejects_bad_placements() {
        let m = spec();
        assert_eq!(Placement::new(&m, vec![]), Err(TopologyError::EmptyPlacement));
        assert!(matches!(
            Placement::new(&m, vec![CtxId(999)]),
            Err(TopologyError::ContextOutOfRange { .. })
        ));
        assert!(matches!(
            Placement::new(&m, vec![CtxId(3), CtxId(3)]),
            Err(TopologyError::ContextOversubscribed { .. })
        ));
    }

    #[test]
    fn spread_uses_one_thread_per_core_first_socket_first() {
        let m = spec();
        let p = Placement::spread(&m, 10).unwrap();
        assert_eq!(p.n_threads(), 10);
        let per_socket = p.threads_per_socket(&m);
        assert_eq!(per_socket, vec![8, 2]);
        assert!(p.threads_per_core(&m).iter().all(|&n| n <= 1));
        assert!(Placement::spread(&m, 17).is_err());
    }

    #[test]
    fn packed_fills_smt_slots() {
        let m = spec();
        let p = Placement::packed(&m, 4).unwrap();
        // 4 threads on 2 cores, both slots each.
        let per_core = p.threads_per_core(&m);
        assert_eq!(per_core[0], 2);
        assert_eq!(per_core[1], 2);
        assert_eq!(p.active_cores_per_socket(&m), vec![2, 0]);
        assert!(p.shares_core(&m, ThreadId(0)));
    }

    #[test]
    fn canonicalize_is_placement_order_independent() {
        let m = spec();
        // Threads on socket1/core0(2 slots) and socket0/core5(1 slot), in
        // two different orders.
        let a = Placement::new(
            &m,
            vec![m.ctx(SocketId(1), 0, 0), m.ctx(SocketId(1), 0, 1), m.ctx(SocketId(0), 5, 0)],
        )
        .unwrap();
        let b = Placement::new(
            &m,
            vec![m.ctx(SocketId(0), 2, 0), m.ctx(SocketId(1), 7, 1), m.ctx(SocketId(1), 7, 0)],
        )
        .unwrap();
        assert_eq!(a.canonicalize(&m), b.canonicalize(&m));
        assert_eq!(a.canonicalize(&m).to_string(), "[2 | 1]");
    }

    #[test]
    fn canonical_instantiate_round_trips() {
        let m = spec();
        let canon = CanonicalPlacement::new(vec![vec![2, 1, 1], vec![2, 2]]);
        let p = canon.instantiate(&m).unwrap();
        assert_eq!(p.n_threads(), 8);
        assert_eq!(p.canonicalize(&m), canon);
    }

    #[test]
    fn canonical_rejects_oversized() {
        let m = spec();
        let too_many_cores = CanonicalPlacement::new(vec![vec![1; 9]]);
        assert!(too_many_cores.instantiate(&m).is_err());
        let too_deep = CanonicalPlacement::new(vec![vec![3]]);
        assert!(too_deep.instantiate(&m).is_err());
        let too_many_sockets = CanonicalPlacement::new(vec![vec![1], vec![1], vec![1]]);
        assert!(too_many_sockets.instantiate(&m).is_err());
    }

    #[test]
    fn canonical_counts() {
        let c = CanonicalPlacement::new(vec![vec![2, 2, 1], vec![1]]);
        assert_eq!(c.total_threads(), 6);
        assert_eq!(c.sockets_used(), 2);
        assert_eq!(c.cores_used(), 4);
    }

    #[test]
    fn normalization_strips_zeros_and_sorts() {
        let c = CanonicalPlacement::new(vec![vec![], vec![0, 1, 2], vec![2]]);
        assert_eq!(c.sockets, vec![vec![2, 1], vec![2]]);
    }
}
