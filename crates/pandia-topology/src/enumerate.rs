//! Enumeration of canonical placements.
//!
//! The paper evaluates each workload over the space of distinct thread
//! placements, sorted by total thread count and then by per-core occupancy
//! (Figure 1's x-axis). On a homogeneous machine the distinct placements
//! are exactly the [`CanonicalPlacement`] equivalence classes: a multiset of
//! per-socket core-occupancy multisets.
//!
//! Enumeration is exhaustive for the two-socket machines (about 18k classes
//! on the X5-2, about 1k on the X3-2/X4-2). For the four-socket X2-4 the
//! space is close to a million classes, so — like the paper, which covered
//! ~20% of placements on its largest machine — deterministic stride
//! subsampling per thread count is provided.

use crate::{
    placement::{CanonicalPlacement, Placement},
    spec::{HasShape, MachineShape},
};

/// Which part of the placement space a placement belongs to, for the
/// four-socket study of §6.2 (Figure 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementClass {
    /// At most two sockets are active.
    TwoSocket,
    /// At most `n` distinct cores are active (the paper uses 20, matching
    /// the core count of two sockets), over any number of sockets.
    LimitedCores(usize),
    /// Any placement over the whole machine.
    WholeMachine,
}

impl PlacementClass {
    /// Whether a canonical placement falls inside this class.
    pub fn contains(&self, p: &CanonicalPlacement) -> bool {
        match self {
            Self::TwoSocket => p.sockets_used() <= 2,
            Self::LimitedCores(n) => p.cores_used() <= *n,
            Self::WholeMachine => true,
        }
    }
}

/// Enumerates canonical placements for one machine.
#[derive(Debug, Clone)]
pub struct PlacementEnumerator {
    sockets: usize,
    /// All possible single-socket occupancy vectors (descending), sorted
    /// descending, *excluding* the empty socket.
    socket_options: Vec<Vec<u8>>,
}

impl PlacementEnumerator {
    /// Builds an enumerator for a machine.
    pub fn new(shape: &impl HasShape) -> Self {
        let spec: MachineShape = shape.shape();
        let mut socket_options =
            socket_partitions(spec.cores_per_socket, spec.threads_per_core as u8);
        socket_options.sort_by(|a, b| b.cmp(a));
        Self { sockets: spec.sockets, socket_options }
    }

    /// Total number of canonical placements (any thread count ≥ 1),
    /// computed without materializing them.
    pub fn count(&self) -> u64 {
        // Multisets of size ≤ sockets from the non-empty options: recurse
        // over option indices with monotone non-decreasing index.
        fn rec(options: usize, slots: usize, start: usize, memo: &mut Vec<Vec<Option<u64>>>) -> u64 {
            if slots == 0 {
                return 1;
            }
            if let Some(v) = memo[slots][start] {
                return v;
            }
            // Either stop here (all remaining sockets empty) or pick option
            // `i >= start` for the next socket.
            let mut total = 1; // stop: remaining sockets empty
            for i in start..options {
                total += rec(options, slots - 1, i, memo);
            }
            memo[slots][start] = Some(total);
            total
        }
        let n_opt = self.socket_options.len();
        let mut memo = vec![vec![None; n_opt + 1]; self.sockets + 1];
        // Subtract 1 for the all-empty machine.
        rec(n_opt, self.sockets, 0, &mut memo) - 1
    }

    /// Every canonical placement with at least one thread, sorted by
    /// [`CanonicalPlacement::sort_key`].
    ///
    /// Materializes the full space — use [`Self::sampled`] on machines where
    /// [`Self::count`] is large.
    pub fn all(&self) -> Vec<CanonicalPlacement> {
        let _span = pandia_obs::span("topology", "enumerate_all");
        let mut out = Vec::new();
        let mut current: Vec<Vec<u8>> = Vec::new();
        self.gen_rec(0, usize::MAX, &mut current, &mut |p| out.push(p));
        sort_placements(&mut out);
        pandia_obs::count("topology.placements_enumerated", out.len() as u64);
        out
    }

    /// Every canonical placement with exactly `n` threads, sorted.
    pub fn for_threads(&self, n: usize) -> Vec<CanonicalPlacement> {
        let mut out = Vec::new();
        let mut current: Vec<Vec<u8>> = Vec::new();
        self.gen_rec(0, n, &mut current, &mut |p| {
            if p.total_threads() == n {
                out.push(p);
            }
        });
        sort_placements(&mut out);
        out
    }

    /// A deterministic subsample: for each thread count, at most `per_n`
    /// placements taken by even stride through that count's sorted list.
    ///
    /// This mirrors the paper's partial coverage of the X5-2 placement space
    /// (§6.1) while remaining reproducible.
    pub fn sampled(&self, shape: &impl HasShape, per_n: usize) -> Vec<CanonicalPlacement> {
        let spec: MachineShape = shape.shape();
        let mut out = Vec::new();
        for n in 1..=spec.total_contexts() {
            let all_n = self.for_threads(n);
            if all_n.len() <= per_n {
                out.extend(all_n);
            } else {
                for i in 0..per_n {
                    let idx = i * all_n.len() / per_n;
                    out.push(all_n[idx].clone());
                }
            }
        }
        out
    }

    /// The §6.3 "simple sweep" baseline: for each thread count `1..=max`,
    /// the packed placement and the spread placement.
    pub fn sweep(&self, shape: &impl HasShape) -> Vec<CanonicalPlacement> {
        let spec: MachineShape = shape.shape();
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for n in 1..=spec.total_contexts() {
            if let Ok(p) = Placement::packed(&spec, n) {
                let c = p.canonicalize(&spec);
                if seen.insert(c.clone()) {
                    out.push(c);
                }
            }
            if let Ok(p) = Placement::spread(&spec, n) {
                let c = p.canonicalize(&spec);
                if seen.insert(c.clone()) {
                    out.push(c);
                }
            }
        }
        sort_placements(&mut out);
        out
    }

    fn gen_rec(
        &self,
        start: usize,
        remaining: usize,
        current: &mut Vec<Vec<u8>>,
        emit: &mut impl FnMut(CanonicalPlacement),
    ) {
        if !current.is_empty() {
            let total: usize =
                current.iter().flat_map(|s| s.iter()).map(|&v| v as usize).sum();
            if remaining == usize::MAX || total <= remaining {
                emit(CanonicalPlacement { sockets: current.clone() });
            }
        }
        if current.len() == self.sockets {
            return;
        }
        let used: usize = current.iter().flat_map(|s| s.iter()).map(|&v| v as usize).sum();
        for i in start..self.socket_options.len() {
            let opt = &self.socket_options[i];
            let opt_total: usize = opt.iter().map(|&v| v as usize).sum();
            if remaining != usize::MAX && used + opt_total > remaining {
                continue;
            }
            // lint: allow(H2): one-shot enumeration emits owned rows
            current.push(opt.clone());
            self.gen_rec(i, remaining, current, emit);
            current.pop();
        }
    }
}

/// Sorts placements by the figure ordering: total threads, then pattern.
pub fn sort_placements(placements: &mut [CanonicalPlacement]) {
    placements.sort_by_key(|p| p.sort_key());
}

/// All non-empty descending occupancy vectors for one socket: parts in
/// `1..=max_part`, at most `cores` parts.
fn socket_partitions(cores: usize, max_part: u8) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    fn rec(cores_left: usize, max_part: u8, current: &mut Vec<u8>, out: &mut Vec<Vec<u8>>) {
        if !current.is_empty() {
            out.push(current.clone());
        }
        if cores_left == 0 {
            return;
        }
        let bound = current.last().copied().unwrap_or(max_part);
        for part in (1..=bound).rev() {
            current.push(part);
            rec(cores_left - 1, max_part, current, out);
            current.pop();
        }
    }
    rec(cores, max_part, &mut current, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;

    #[test]
    fn socket_partitions_small_case() {
        // 2 cores, up to 2 threads each: [1], [2], [1,1], [2,1], [2,2].
        let mut parts = socket_partitions(2, 2);
        parts.sort();
        assert_eq!(parts, vec![vec![1], vec![1, 1], vec![2], vec![2, 1], vec![2, 2]]);
    }

    #[test]
    fn toy_machine_enumeration_is_complete() {
        let spec = MachineSpec::toy();
        let e = PlacementEnumerator::new(&spec);
        let all = e.all();
        // Toy: 2 sockets x 2 cores x 1 thread. Socket options: [1], [1,1].
        // Multisets over 2 sockets (incl. one empty socket):
        // {[1]}, {[1,1]}, {[1],[1]}, {[1,1],[1]}, {[1,1],[1,1]} => 5.
        assert_eq!(all.len(), 5);
        assert_eq!(e.count(), 5);
        // Sorted by total thread count.
        let totals: Vec<usize> = all.iter().map(|p| p.total_threads()).collect();
        let mut sorted = totals.clone();
        sorted.sort_unstable();
        assert_eq!(totals, sorted);
    }

    #[test]
    fn count_matches_materialized_for_x3_2() {
        let spec = MachineSpec::x3_2();
        let e = PlacementEnumerator::new(&spec);
        let all = e.all();
        assert_eq!(all.len() as u64, e.count());
        // Per-socket (a,b) with a+b<=8 minus empty = 44 options; unordered
        // pairs incl. empty = 45*46/2 - 1 = 1034.
        assert_eq!(all.len(), 1034);
    }

    #[test]
    fn x5_2_count_is_tractable() {
        let e = PlacementEnumerator::new(&MachineSpec::x5_2());
        // (a,b) with a+b<=18 => 190 incl. empty; C(190+1,2) - 1 = 18144.
        assert_eq!(e.count(), 18144);
    }

    #[test]
    fn x2_4_count_without_materializing() {
        let e = PlacementEnumerator::new(&MachineSpec::x2_4());
        // 65 non-empty per-socket options; multisets over 4 sockets:
        // C(66+3,4) - 1 = 864500... computed by DP, just sanity-bound it.
        let c = e.count();
        assert!(c > 500_000 && c < 1_000_000, "count = {c}");
    }

    #[test]
    fn for_threads_returns_only_that_count() {
        let spec = MachineSpec::x3_2();
        let e = PlacementEnumerator::new(&spec);
        let p4 = e.for_threads(4);
        assert!(p4.iter().all(|p| p.total_threads() == 4));
        // Check a few expected members.
        assert!(p4.contains(&CanonicalPlacement::new(vec![vec![1, 1, 1, 1]])));
        assert!(p4.contains(&CanonicalPlacement::new(vec![vec![2, 2]])));
        assert!(p4.contains(&CanonicalPlacement::new(vec![vec![2], vec![1, 1]])));
        // No duplicates.
        let mut dedup = p4.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), p4.len());
    }

    #[test]
    fn all_placements_instantiate_on_their_machine() {
        let spec = MachineSpec::x3_2();
        let e = PlacementEnumerator::new(&spec);
        for c in e.all() {
            let p = c.instantiate(&spec).expect("enumerated placement must fit");
            assert_eq!(p.canonicalize(&spec), c);
        }
    }

    #[test]
    fn sampled_respects_per_n_budget() {
        let spec = MachineSpec::x5_2();
        let e = PlacementEnumerator::new(&spec);
        let sample = e.sampled(&spec, 10);
        assert!(sample.len() <= 10 * spec.total_contexts());
        // Every thread count up to 72 is represented.
        let mut counts = vec![0usize; spec.total_contexts() + 1];
        for p in &sample {
            counts[p.total_threads()] += 1;
        }
        for (n, &count) in counts.iter().enumerate().skip(1) {
            assert!(count >= 1, "thread count {n} missing from sample");
            assert!(count <= 10);
        }
    }

    #[test]
    fn sweep_contains_packed_and_spread_extremes() {
        let spec = MachineSpec::x3_2();
        let e = PlacementEnumerator::new(&spec);
        let sweep = e.sweep(&spec);
        // 4 threads packed => [2,2] on one socket; spread => 1x4 on one socket.
        assert!(sweep.contains(&CanonicalPlacement::new(vec![vec![2, 2]])));
        assert!(sweep.contains(&CanonicalPlacement::new(vec![vec![1, 1, 1, 1]])));
        // Sweep is much smaller than the full space.
        assert!(sweep.len() < 2 * spec.total_contexts() + 2);
        // No duplicates.
        let mut set = std::collections::HashSet::new();
        for p in &sweep {
            assert!(set.insert(p.clone()));
        }
    }

    #[test]
    fn placement_classes_partition_sensibly() {
        let p = CanonicalPlacement::new(vec![vec![1, 1], vec![1], vec![1]]);
        assert!(!PlacementClass::TwoSocket.contains(&p));
        assert!(PlacementClass::LimitedCores(4).contains(&p));
        assert!(!PlacementClass::LimitedCores(3).contains(&p));
        assert!(PlacementClass::WholeMachine.contains(&p));
        let q = CanonicalPlacement::new(vec![vec![2, 2, 2], vec![1]]);
        assert!(PlacementClass::TwoSocket.contains(&q));
    }
}
