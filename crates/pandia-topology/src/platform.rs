//! The platform abstraction: how Pandia observes a machine.
//!
//! Pandia's machine description generator (§3) and workload description
//! generator (§4) only ever *run things and read counters*. The
//! [`Platform`] trait captures exactly that capability. In this workspace it
//! is implemented by the ground-truth simulator; on real hardware it would
//! be implemented with thread pinning plus perf events, with no change to
//! the core library.

use serde::{Deserialize, Serialize};

use crate::{
    error::TopologyError,
    ids::CtxId,
    placement::Placement,
    spec::MachineSpec,
};

/// Synthetic stress kernels used to saturate one resource at a time
/// (paper §3: "a collection of stress applications designed to saturate
/// different resources in the machine").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StressKind {
    /// Integer ALU loop over an L1-resident dataset: saturates instruction
    /// issue without memory traffic (§3.2).
    Cpu,
    /// Linear streaming over an array sized to almost fill the L1.
    L1,
    /// Streaming over an array sized to almost fill the L2.
    L2,
    /// Streaming over an array sized to almost fill the shared L3.
    L3,
    /// Streaming over an array at least 100x the LLC, placed on the local
    /// socket: saturates local DRAM channels (§3.1).
    DramLocal,
    /// Streaming over a DRAM-sized array placed on a *remote* socket:
    /// saturates an interconnect link.
    DramRemote,
}

impl StressKind {
    /// All stress kinds in measurement order.
    pub const ALL: [StressKind; 6] = [
        StressKind::Cpu,
        StressKind::L1,
        StressKind::L2,
        StressKind::L3,
        StressKind::DramLocal,
        StressKind::DramRemote,
    ];
}

/// Where a workload's data lives, mirroring `numactl` policies (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPlacement {
    /// Pages striped round-robin over every memory node: each thread's DRAM
    /// traffic is split evenly across all sockets.
    Interleave,
    /// All pages on one node.
    Node(usize),
    /// Pages local to the socket of the thread that first touches them
    /// during a parallel initialization: shared data ends up spread over
    /// the *occupied* sockets in proportion to the threads on each, and
    /// every thread's DRAM traffic follows that split.
    FirstTouch,
    /// Each thread's pages are local to its own socket (perfectly
    /// partitioned data).
    ThreadLocal,
    /// Each thread's pages are bound to a *remote* socket (used by the
    /// interconnect stress kernel).
    RemoteNeighbor,
}

/// A stress application co-scheduled on one hardware context alongside the
/// workload (used by profiling Runs 4 and 5, §4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StressPin {
    /// Which stress kernel to run.
    pub kind: StressKind,
    /// The hardware context it is pinned to.
    pub ctx: CtxId,
}

/// A request to execute a workload once under a given placement.
#[derive(Debug, Clone)]
pub struct RunRequest<W> {
    /// The workload to execute.
    pub workload: W,
    /// Thread pinning for the workload's software threads.
    pub placement: Placement,
    /// Stress applications co-scheduled on other contexts.
    pub stressors: Vec<StressPin>,
    /// Fill otherwise-idle cores with a core-local background spinner so
    /// that measurements are taken at the all-cores-busy frequency
    /// (paper §6.3, "Power management").
    pub fill_background: bool,
    /// Whether Turbo Boost is enabled for this run.
    pub turbo: bool,
    /// Overrides the workload's default data placement when set.
    pub data_placement: Option<DataPlacement>,
    /// Seed for the run's measurement noise; identical requests with
    /// identical seeds reproduce identical results.
    pub seed: u64,
}

impl<W> RunRequest<W> {
    /// A plain run: no stressors, background fill on, turbo on, default
    /// data placement, seed 0.
    pub fn new(workload: W, placement: Placement) -> Self {
        Self {
            workload,
            placement,
            stressors: Vec::new(),
            fill_background: true,
            turbo: true,
            data_placement: None,
            seed: 0,
        }
    }

    /// Adds a co-scheduled stressor.
    pub fn with_stressor(mut self, kind: StressKind, ctx: CtxId) -> Self {
        self.stressors.push(StressPin { kind, ctx });
        self
    }

    /// Sets the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Aggregate hardware-counter readings for one run.
///
/// Byte counts are totals over the run; dividing by the elapsed time yields
/// the rates Pandia uses as demands (§4.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Counters {
    /// Instructions retired by workload threads.
    pub instructions: f64,
    /// Bytes transferred over L1 links.
    pub l1_bytes: f64,
    /// Bytes transferred over L2 links.
    pub l2_bytes: f64,
    /// Bytes transferred over L3 links.
    pub l3_bytes: f64,
    /// Bytes transferred from each socket's DRAM, indexed by socket.
    pub dram_bytes: Vec<f64>,
    /// Bytes crossing the inter-socket interconnect (all links summed).
    pub interconnect_bytes: f64,
}

/// The outcome of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Wall-clock execution time in abstract seconds.
    pub elapsed: f64,
    /// Counter readings for the workload's threads.
    pub counters: Counters,
    /// Fraction of the run each workload thread spent busy (1.0 = always).
    pub per_thread_busy: Vec<f64>,
}

/// Errors from platform execution.
#[derive(Debug, Clone, PartialEq)]
pub enum PlatformError {
    /// The workload cannot run on this machine (e.g. requires AVX).
    Unsupported {
        /// Why the workload cannot run.
        reason: String,
    },
    /// The placement was invalid for the machine.
    Placement(TopologyError),
    /// A stressor was pinned onto a context already used by the workload.
    StressorCollision {
        /// The contested context.
        ctx: usize,
    },
    /// A platform implementation violated its own contract (e.g. returned
    /// fewer results than jobs submitted).
    Internal {
        /// What the implementation got wrong.
        reason: String,
    },
    /// The run failed for a reason expected to clear on retry (a counter
    /// multiplexing glitch, a perf-event buffer overflow, an interrupted
    /// measurement window). Callers may re-issue the request, typically
    /// with a fresh seed.
    Transient {
        /// What went wrong with this attempt.
        reason: String,
    },
}

impl PlatformError {
    /// Whether retrying the same request (with a fresh seed) may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, Self::Transient { .. })
    }
}

impl core::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Unsupported { reason } => write!(f, "workload unsupported: {reason}"),
            Self::Placement(e) => write!(f, "invalid placement: {e}"),
            Self::StressorCollision { ctx } => {
                write!(f, "stressor pinned to occupied context {ctx}")
            }
            Self::Internal { reason } => write!(f, "platform contract violation: {reason}"),
            Self::Transient { reason } => write!(f, "transient platform fault: {reason}"),
        }
    }
}

impl std::error::Error for PlatformError {}

impl From<TopologyError> for PlatformError {
    fn from(e: TopologyError) -> Self {
        Self::Placement(e)
    }
}

/// One job of a co-scheduled multi-workload run.
#[derive(Debug, Clone)]
pub struct JobRequest<W> {
    /// The workload to execute.
    pub workload: W,
    /// Thread pinning for this job (must not overlap other jobs).
    pub placement: Placement,
    /// Data placement override for this job.
    pub data_placement: Option<DataPlacement>,
}

/// A request to execute several workloads concurrently.
#[derive(Debug, Clone)]
pub struct MultiRunRequest<W> {
    /// The co-scheduled jobs.
    pub jobs: Vec<JobRequest<W>>,
    /// Fill otherwise-idle cores with background spinners.
    pub fill_background: bool,
    /// Whether Turbo Boost is enabled.
    pub turbo: bool,
    /// Seed for measurement noise.
    pub seed: u64,
}

impl<W> MultiRunRequest<W> {
    /// A plain multi-run over `(workload, placement)` pairs.
    pub fn new(jobs: Vec<(W, Placement)>) -> Self {
        Self {
            jobs: jobs
                .into_iter()
                .map(|(workload, placement)| JobRequest {
                    workload,
                    placement,
                    data_placement: None,
                })
                .collect(),
            fill_background: true,
            turbo: true,
            seed: 0,
        }
    }
}

/// A machine that can execute workloads under explicit placements and
/// report execution time plus counters.
pub trait Platform {
    /// The platform's workload representation.
    type Workload: Clone;

    /// The structural description of the machine (socket/core/thread
    /// counts). Capacities in the spec are *not* consulted by Pandia; it
    /// measures them itself.
    fn spec(&self) -> &MachineSpec;

    /// Returns a runnable stress kernel of the given kind, sized for this
    /// machine.
    fn stress_workload(&self, kind: StressKind) -> Self::Workload;

    /// Executes one run.
    fn run(&mut self, req: &RunRequest<Self::Workload>) -> Result<RunResult, PlatformError>;

    /// Executes several workloads concurrently, returning one result per
    /// job in input order.
    ///
    /// The default implementation reports the capability as unsupported;
    /// platforms that can co-schedule (the simulator, or pinned threads on
    /// real hardware) override it.
    fn run_multi(
        &mut self,
        req: &MultiRunRequest<Self::Workload>,
    ) -> Result<Vec<RunResult>, PlatformError> {
        let _ = req;
        Err(PlatformError::Unsupported {
            reason: "this platform does not support co-scheduled runs".to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CtxId;

    #[test]
    fn run_request_builder_composes() {
        let spec = MachineSpec::toy();
        let placement = Placement::spread(&spec, 2).unwrap();
        let req = RunRequest::new("wl", placement)
            .with_stressor(StressKind::Cpu, CtxId(3))
            .with_seed(42);
        assert_eq!(req.stressors.len(), 1);
        assert_eq!(req.stressors[0].kind, StressKind::Cpu);
        assert_eq!(req.seed, 42);
        assert!(req.fill_background);
        assert!(req.turbo);
    }

    #[test]
    fn platform_error_displays() {
        let e = PlatformError::Unsupported { reason: "requires AVX".into() };
        assert!(e.to_string().contains("AVX"));
        let e: PlatformError = TopologyError::EmptyPlacement.into();
        assert!(matches!(e, PlatformError::Placement(_)));
        let e = PlatformError::StressorCollision { ctx: 5 };
        assert!(e.to_string().contains('5'));
    }

    #[test]
    fn stress_kinds_enumerate_all() {
        assert_eq!(StressKind::ALL.len(), 6);
    }
}
