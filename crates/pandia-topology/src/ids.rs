//! Strongly typed identifiers for hardware components and model entities.

use serde::{Deserialize, Serialize};

/// Identifier of a processor socket (chip) within a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SocketId(pub usize);

/// Identifier of a physical core, global across the machine.
///
/// Cores are numbered socket-major: core `c` on socket `s` of a machine with
/// `k` cores per socket has global id `s * k + c`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub usize);

/// Identifier of a hardware context (SMT thread slot), global across the
/// machine.
///
/// Contexts are numbered core-major: slot `t` of global core `c` on a
/// machine with `m` threads per core has global id `c * m + t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CtxId(pub usize);

/// Index of a software thread within a workload (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ThreadId(pub usize);

/// Index into a [`crate::ResourceTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ResourceId(pub usize);

macro_rules! impl_display {
    ($($ty:ident => $prefix:literal),* $(,)?) => {
        $(
            impl core::fmt::Display for $ty {
                fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                    write!(f, concat!($prefix, "{}"), self.0)
                }
            }
        )*
    };
}

impl_display! {
    SocketId => "socket",
    CoreId => "core",
    CtxId => "ctx",
    ThreadId => "thread",
    ResourceId => "res",
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_prefixed() {
        assert_eq!(SocketId(1).to_string(), "socket1");
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(CtxId(7).to_string(), "ctx7");
        assert_eq!(ThreadId(0).to_string(), "thread0");
        assert_eq!(ResourceId(12).to_string(), "res12");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(CtxId(1) < CtxId(2));
        assert!(SocketId(0) < SocketId(1));
    }
}
