//! Machine topology, resources, placements, and the platform abstraction.
//!
//! This crate is the shared substrate of the Pandia workspace. It defines:
//!
//! * [`MachineSpec`] — the physical structure and capacities of a
//!   cache-coherent multi-socket machine, with presets for the four Intel
//!   Xeon systems evaluated in the paper (`X5-2`, `X4-2`, `X3-2`, `X2-4`)
//!   plus the two-socket toy machine used in the paper's worked example
//!   (Figure 3).
//! * [`ResourceTable`] — the flat table of contended resources derived from
//!   a spec: per-core issue capacity, per-core cache links, per-socket
//!   last-level-cache aggregate bandwidth, per-socket DRAM channels, and the
//!   fully connected inter-socket interconnect.
//! * [`Placement`] — an assignment of software threads to hardware contexts,
//!   together with the canonical enumeration order used on the x-axis of the
//!   paper's Figures 1 and 10.
//! * [`DemandVector`] — a workload's per-thread demand for each resource
//!   class, and the routing of those demands onto concrete resources.
//! * [`Platform`] — the trait through which Pandia's description generators
//!   and predictor observe a machine (run a workload under a placement and
//!   read back time and counters). The ground-truth simulator implements it;
//!   a perf-event backend for real hardware could implement it equally.
//!
//! All bandwidths and rates use consistent abstract units (the paper, §3,
//! notes that only consistency matters, not absolute scale). The presets use
//! GB/s for bandwidths and giga-instructions/s for instruction rates.

pub mod demand;
pub mod enumerate;
pub mod error;
pub mod ids;
pub mod placement;
pub mod platform;
pub mod resource;
pub mod spec;

pub use demand::DemandVector;
pub use enumerate::{PlacementClass, PlacementEnumerator};
pub use error::TopologyError;
pub use ids::{CoreId, CtxId, ResourceId, SocketId, ThreadId};
pub use placement::{CanonicalPlacement, HwContext, Placement};
pub use platform::{
    Counters, DataPlacement, JobRequest, MultiRunRequest, Platform, PlatformError, RunRequest,
    RunResult, StressKind, StressPin,
};
pub use resource::{CapacityProfile, Resource, ResourceKind, ResourceTable};
pub use spec::{HasShape, MachineShape, MachineSpec, TurboCurve};
