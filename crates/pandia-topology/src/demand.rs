//! Per-thread resource demand vectors and their routing onto resources.
//!
//! A [`DemandVector`] is the paper's `d` (Figure 4, step 1): the rates at
//! which one thread of the workload consumes each resource class when
//! running alone. DRAM demand is recorded *per memory node*, reflecting the
//! paper's Run 1 example ("memory transfer bandwidth of 40 to each socket"):
//! where a thread's memory traffic lands depends on the data placement, and
//! traffic to a remote node additionally crosses the interconnect.

use serde::{Deserialize, Serialize};

use crate::{
    ids::{CtxId, ResourceId},
    resource::ResourceTable,
    spec::HasShape,
};

/// Resource demand rates for a single thread.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandVector {
    /// Instructions issued per unit time.
    pub instr: f64,
    /// L1 bandwidth demand.
    pub l1: f64,
    /// L2 bandwidth demand.
    pub l2: f64,
    /// L3 bandwidth demand.
    pub l3: f64,
    /// DRAM bandwidth demand per memory node (socket).
    pub dram: Vec<f64>,
}

impl DemandVector {
    /// A zero demand vector for a machine with `sockets` memory nodes.
    pub fn zero(sockets: usize) -> Self {
        Self { instr: 0.0, l1: 0.0, l2: 0.0, l3: 0.0, dram: vec![0.0; sockets] }
    }

    /// Total DRAM demand summed over all memory nodes.
    pub fn dram_total(&self) -> f64 {
        self.dram.iter().sum()
    }

    /// Returns this vector with every component multiplied by `factor`
    /// (used to scale demands by thread utilization, paper §5.1).
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            instr: self.instr * factor,
            l1: self.l1 * factor,
            l2: self.l2 * factor,
            l3: self.l3 * factor,
            dram: self.dram.iter().map(|d| d * factor).collect(),
        }
    }

    /// Component-wise sum of two vectors.
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.dram.len(), other.dram.len(), "mismatched memory node count");
        Self {
            instr: self.instr + other.instr,
            l1: self.l1 + other.l1,
            l2: self.l2 + other.l2,
            l3: self.l3 + other.l3,
            dram: self.dram.iter().zip(&other.dram).map(|(a, b)| a + b).collect(),
        }
    }

    /// Routes this demand onto concrete resources for a thread pinned at
    /// `ctx`, appending `(resource, rate)` pairs to `out`.
    ///
    /// Routing rules:
    /// * instruction demand → the core's issue resource;
    /// * L1/L2 demand → the core's private cache links;
    /// * L3 demand → the core's L3 link **and** the socket's L3 aggregate;
    /// * DRAM demand to node `m` → node `m`'s DRAM channels, plus the
    ///   interconnect link between the thread's socket and `m` when remote.
    pub fn route(
        &self,
        shape: &impl HasShape,
        table: &ResourceTable,
        ctx: CtxId,
        out: &mut Vec<(ResourceId, f64)>,
    ) {
        let spec = shape.shape();
        let core = spec.core_of_ctx(ctx);
        let socket = spec.socket_of_ctx(ctx);
        if self.instr > 0.0 {
            out.push((table.core_issue(core), self.instr));
        }
        if self.l1 > 0.0 {
            out.push((table.l1(core), self.l1));
        }
        if self.l2 > 0.0 {
            out.push((table.l2(core), self.l2));
        }
        if self.l3 > 0.0 {
            out.push((table.l3_link(core), self.l3));
            out.push((table.l3_aggregate(socket), self.l3));
        }
        for (node, &demand) in self.dram.iter().enumerate() {
            if demand <= 0.0 {
                continue;
            }
            let node_id = crate::ids::SocketId(node);
            out.push((table.dram(node_id), demand));
            if node_id != socket {
                if let Some(link) = table.interconnect(socket, node_id) {
                    out.push((link, demand));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::MachineSpec;
    use crate::ids::SocketId;

    fn toy() -> (MachineSpec, ResourceTable) {
        let spec = MachineSpec::toy();
        let table = ResourceTable::from_spec(&spec);
        (spec, table)
    }

    /// The paper's Run 1 workload demand on the toy machine: instruction
    /// rate 7, DRAM bandwidth 40 to each socket.
    fn example_demand() -> DemandVector {
        DemandVector { instr: 7.0, l1: 0.0, l2: 0.0, l3: 0.0, dram: vec![40.0, 40.0] }
    }

    #[test]
    fn routes_example_thread_on_socket0() {
        let (spec, table) = toy();
        let mut out = Vec::new();
        // Context 0 = socket 0, core 0.
        example_demand().route(&spec, &table, CtxId(0), &mut out);
        // Expect: issue(core0)=7, dram(s0)=40, dram(s1)=40, link(0,1)=40.
        let find = |id: ResourceId| out.iter().find(|(r, _)| *r == id).map(|(_, v)| *v);
        assert_eq!(find(table.core_issue(crate::ids::CoreId(0))), Some(7.0));
        assert_eq!(find(table.dram(SocketId(0))), Some(40.0));
        assert_eq!(find(table.dram(SocketId(1))), Some(40.0));
        assert_eq!(find(table.interconnect(SocketId(0), SocketId(1)).unwrap()), Some(40.0));
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn remote_node_traffic_crosses_interconnect_from_either_side() {
        let (spec, table) = toy();
        let mut out = Vec::new();
        // Context 2 = socket 1, core 2 (toy: 2 cores/socket, 1 thread/core).
        example_demand().route(&spec, &table, CtxId(2), &mut out);
        let link = table.interconnect(SocketId(0), SocketId(1)).unwrap();
        let link_demand: f64 =
            out.iter().filter(|(r, _)| *r == link).map(|(_, v)| *v).sum();
        // Only the socket-0 portion of the DRAM demand is remote now.
        assert_eq!(link_demand, 40.0);
    }

    #[test]
    fn three_example_threads_reproduce_figure_7b_totals() {
        // Figure 7b: threads U, V on socket 0 (sharing a core) and W on
        // socket 1, utilization 0.83 each. Both DRAM links carry ~100 and
        // the interconnect carries ~100.
        let (spec, table) = toy();
        let f = 0.8333333;
        let mut load = vec![0.0; table.len()];
        // Toy machine has 1 thread/core, but routing only cares about the
        // core/socket of the context; use distinct cores for U and V here
        // (DRAM/interconnect totals are unaffected by core sharing).
        for ctx in [CtxId(0), CtxId(1), CtxId(2)] {
            let mut out = Vec::new();
            example_demand().scaled(f).route(&spec, &table, ctx, &mut out);
            for (r, v) in out {
                load[r.0] += v;
            }
        }
        let dram0 = load[table.dram(SocketId(0)).0];
        let dram1 = load[table.dram(SocketId(1)).0];
        let link = load[table.interconnect(SocketId(0), SocketId(1)).unwrap().0];
        assert!((dram0 - 100.0).abs() < 0.1, "dram0 = {dram0}");
        assert!((dram1 - 100.0).abs() < 0.1, "dram1 = {dram1}");
        assert!((link - 100.0).abs() < 0.1, "link = {link}");
    }

    #[test]
    fn scaling_and_adding_are_componentwise() {
        let d = example_demand();
        let s = d.scaled(0.5);
        assert_eq!(s.instr, 3.5);
        assert_eq!(s.dram, vec![20.0, 20.0]);
        let sum = s.add(&s);
        assert_eq!(sum.instr, d.instr);
        assert_eq!(sum.dram_total(), d.dram_total());
    }

    #[test]
    fn zero_demand_routes_nothing() {
        let (spec, table) = toy();
        let mut out = Vec::new();
        DemandVector::zero(2).route(&spec, &table, CtxId(0), &mut out);
        assert!(out.is_empty());
    }
}
