//! Error types shared across the workspace substrate.

use core::fmt;

/// Errors raised when constructing or interrogating machine topologies and
/// placements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A machine specification had a zero-sized dimension or non-positive
    /// capacity.
    InvalidSpec {
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A placement referenced a hardware context outside the machine.
    ContextOutOfRange {
        /// The offending context id.
        ctx: usize,
        /// Number of hardware contexts in the machine.
        total: usize,
    },
    /// A placement pinned more software threads to one context than allowed.
    ContextOversubscribed {
        /// The oversubscribed context id.
        ctx: usize,
    },
    /// A placement contained no threads.
    EmptyPlacement,
    /// A canonical placement did not fit the machine (too many cores used on
    /// a socket, too many threads on a core, or too many sockets).
    CanonicalMismatch {
        /// Human-readable description of the mismatch.
        reason: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidSpec { reason } => write!(f, "invalid machine spec: {reason}"),
            Self::ContextOutOfRange { ctx, total } => {
                write!(f, "hardware context {ctx} out of range (machine has {total})")
            }
            Self::ContextOversubscribed { ctx } => {
                write!(f, "hardware context {ctx} pinned more than once")
            }
            Self::EmptyPlacement => write!(f, "placement contains no threads"),
            Self::CanonicalMismatch { reason } => {
                write!(f, "canonical placement does not fit machine: {reason}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TopologyError::ContextOutOfRange { ctx: 99, total: 72 };
        assert!(e.to_string().contains("99"));
        assert!(e.to_string().contains("72"));
        let e = TopologyError::InvalidSpec { reason: "zero cores".into() };
        assert!(e.to_string().contains("zero cores"));
    }
}
