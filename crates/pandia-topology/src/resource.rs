//! Contended resources of a machine and their capacities.
//!
//! Both the ground-truth simulator and the Pandia predictor reason about a
//! machine as a flat table of rate-capacity resources. The simulator builds
//! the table from the *physical* [`MachineSpec`]; the predictor builds it
//! from the *measured* machine description (paper §3). Sharing the table
//! structure guarantees the two sides speak the same routing language while
//! keeping their capacity numbers independent.

use serde::{Deserialize, Serialize};

use crate::{
    ids::{CoreId, ResourceId, SocketId},
    spec::MachineSpec,
};

/// The kind (and location) of a contended resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Instruction issue capacity of one core.
    CoreIssue(CoreId),
    /// Private L1 data bandwidth of one core.
    L1(CoreId),
    /// Private L2 bandwidth of one core.
    L2(CoreId),
    /// Bandwidth of one core's link into the shared L3.
    L3Link(CoreId),
    /// Aggregate bandwidth the shared L3 of one socket can sustain across
    /// all of its links (paper §3.1: both the per-link and the aggregate
    /// limit are part of the machine description).
    L3Aggregate(SocketId),
    /// DRAM channel bandwidth of one socket's memory.
    Dram(SocketId),
    /// An inter-socket interconnect link, identified by its unordered-pair
    /// index (see [`MachineSpec::link_index`]).
    Interconnect(usize),
}

impl ResourceKind {
    /// Short human-readable label, e.g. `"L3agg(socket0)"`.
    pub fn label(&self) -> String {
        match self {
            Self::CoreIssue(c) => format!("issue({c})"),
            Self::L1(c) => format!("L1({c})"),
            Self::L2(c) => format!("L2({c})"),
            Self::L3Link(c) => format!("L3link({c})"),
            Self::L3Aggregate(s) => format!("L3agg({s})"),
            Self::Dram(s) => format!("DRAM({s})"),
            Self::Interconnect(l) => format!("link({l})"),
        }
    }
}

/// One contended resource: its kind and its sustainable rate capacity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Resource {
    /// What and where this resource is.
    pub kind: ResourceKind,
    /// Sustainable rate in the workspace's consistent units.
    pub capacity: f64,
}

/// Scalar capacities from which a [`ResourceTable`] is laid out.
///
/// This is the schema of a *measured* machine description as well: the
/// Pandia machine description generator produces one of these from stress
/// runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityProfile {
    /// Per-core instruction issue rate.
    pub core_issue: f64,
    /// Per-core L1 bandwidth.
    pub l1_per_core: f64,
    /// Per-core L2 bandwidth.
    pub l2_per_core: f64,
    /// Per-core L3 link bandwidth.
    pub l3_per_link: f64,
    /// Per-socket aggregate L3 bandwidth.
    pub l3_aggregate: f64,
    /// Per-socket DRAM bandwidth.
    pub dram_per_socket: f64,
    /// Per-link interconnect bandwidth.
    pub interconnect_per_link: f64,
}

impl CapacityProfile {
    /// Capacity profile of a physical spec at a given core frequency (GHz).
    ///
    /// Core-clocked capacities (issue, L1, L2) scale with frequency; uncore
    /// capacities do not.
    pub fn of_spec_at(spec: &MachineSpec, ghz: f64) -> Self {
        let scale = ghz / spec.turbo.nominal_ghz;
        Self {
            core_issue: spec.core_ipc_rate * scale,
            l1_per_core: spec.l1_bw_per_core * scale,
            l2_per_core: spec.l2_bw_per_core * scale,
            l3_per_link: spec.l3_bw_per_link,
            l3_aggregate: spec.l3_bw_aggregate,
            dram_per_socket: spec.dram_bw_per_socket,
            interconnect_per_link: spec.interconnect_bw_per_link,
        }
    }
}

/// Flat table of every contended resource in a machine.
///
/// Layout (contiguous ranges, in order): core issue, L1, L2, L3 link (one
/// each per core), then L3 aggregate and DRAM (one each per socket), then
/// one entry per interconnect link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResourceTable {
    sockets: usize,
    cores_per_socket: usize,
    resources: Vec<Resource>,
}

impl ResourceTable {
    /// Builds the table for a machine shape with the given capacities.
    pub fn new(sockets: usize, cores_per_socket: usize, caps: &CapacityProfile) -> Self {
        let total_cores = sockets * cores_per_socket;
        let links = sockets * sockets.saturating_sub(1) / 2;
        let mut resources = Vec::with_capacity(4 * total_cores + 2 * sockets + links);
        for c in 0..total_cores {
            resources.push(Resource { kind: ResourceKind::CoreIssue(CoreId(c)), capacity: caps.core_issue });
        }
        for c in 0..total_cores {
            resources.push(Resource { kind: ResourceKind::L1(CoreId(c)), capacity: caps.l1_per_core });
        }
        for c in 0..total_cores {
            resources.push(Resource { kind: ResourceKind::L2(CoreId(c)), capacity: caps.l2_per_core });
        }
        for c in 0..total_cores {
            resources.push(Resource { kind: ResourceKind::L3Link(CoreId(c)), capacity: caps.l3_per_link });
        }
        for s in 0..sockets {
            resources.push(Resource {
                kind: ResourceKind::L3Aggregate(SocketId(s)),
                capacity: caps.l3_aggregate,
            });
        }
        for s in 0..sockets {
            resources.push(Resource { kind: ResourceKind::Dram(SocketId(s)), capacity: caps.dram_per_socket });
        }
        for l in 0..links {
            resources.push(Resource {
                kind: ResourceKind::Interconnect(l),
                capacity: caps.interconnect_per_link,
            });
        }
        Self { sockets, cores_per_socket, resources }
    }

    /// Builds the table for a spec with capacities at nominal frequency.
    pub fn from_spec(spec: &MachineSpec) -> Self {
        Self::new(
            spec.sockets,
            spec.cores_per_socket,
            &CapacityProfile::of_spec_at(spec, spec.turbo.nominal_ghz),
        )
    }

    /// Number of sockets covered by the table.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Number of cores per socket covered by the table.
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// All resources in table order.
    pub fn resources(&self) -> &[Resource] {
        &self.resources
    }

    /// Number of resources in the table.
    pub fn len(&self) -> usize {
        self.resources.len()
    }

    /// Whether the table is empty (never true for a valid machine).
    pub fn is_empty(&self) -> bool {
        self.resources.is_empty()
    }

    /// Resource by id.
    pub fn get(&self, id: ResourceId) -> &Resource {
        &self.resources[id.0]
    }

    /// Mutable capacity access (used by the simulator to apply DVFS).
    pub fn set_capacity(&mut self, id: ResourceId, capacity: f64) {
        self.resources[id.0].capacity = capacity;
    }

    /// Id of a core's issue resource.
    pub fn core_issue(&self, core: CoreId) -> ResourceId {
        ResourceId(core.0)
    }

    /// Id of a core's L1 resource.
    pub fn l1(&self, core: CoreId) -> ResourceId {
        ResourceId(self.total_cores() + core.0)
    }

    /// Id of a core's L2 resource.
    pub fn l2(&self, core: CoreId) -> ResourceId {
        ResourceId(2 * self.total_cores() + core.0)
    }

    /// Id of a core's L3 link resource.
    pub fn l3_link(&self, core: CoreId) -> ResourceId {
        ResourceId(3 * self.total_cores() + core.0)
    }

    /// Id of a socket's aggregate L3 resource.
    pub fn l3_aggregate(&self, socket: SocketId) -> ResourceId {
        ResourceId(4 * self.total_cores() + socket.0)
    }

    /// Id of a socket's DRAM resource.
    pub fn dram(&self, socket: SocketId) -> ResourceId {
        ResourceId(4 * self.total_cores() + self.sockets + socket.0)
    }

    /// Id of the interconnect link between two distinct sockets.
    pub fn interconnect(&self, a: SocketId, b: SocketId) -> Option<ResourceId> {
        if a == b || self.sockets < 2 {
            return None;
        }
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        let before: usize = (0..lo).map(|s| self.sockets - 1 - s).sum();
        Some(ResourceId(4 * self.total_cores() + 2 * self.sockets + before + (hi - lo - 1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> ResourceTable {
        ResourceTable::from_spec(&MachineSpec::x3_2())
    }

    #[test]
    fn table_has_expected_size() {
        let t = table();
        // 16 cores * 4 + 2 sockets * 2 + 1 link.
        assert_eq!(t.len(), 16 * 4 + 4 + 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn index_helpers_agree_with_kinds() {
        let t = table();
        for c in 0..t.total_cores() {
            assert_eq!(t.get(t.core_issue(CoreId(c))).kind, ResourceKind::CoreIssue(CoreId(c)));
            assert_eq!(t.get(t.l1(CoreId(c))).kind, ResourceKind::L1(CoreId(c)));
            assert_eq!(t.get(t.l2(CoreId(c))).kind, ResourceKind::L2(CoreId(c)));
            assert_eq!(t.get(t.l3_link(CoreId(c))).kind, ResourceKind::L3Link(CoreId(c)));
        }
        for s in 0..2 {
            assert_eq!(
                t.get(t.l3_aggregate(SocketId(s))).kind,
                ResourceKind::L3Aggregate(SocketId(s))
            );
            assert_eq!(t.get(t.dram(SocketId(s))).kind, ResourceKind::Dram(SocketId(s)));
        }
        let link = t.interconnect(SocketId(0), SocketId(1)).unwrap();
        assert_eq!(t.get(link).kind, ResourceKind::Interconnect(0));
        assert!(t.interconnect(SocketId(0), SocketId(0)).is_none());
    }

    #[test]
    fn four_socket_interconnect_indices_unique_and_symmetric() {
        let t = ResourceTable::from_spec(&MachineSpec::x2_4());
        let mut ids = Vec::new();
        for a in 0..4 {
            for b in (a + 1)..4 {
                let id = t.interconnect(SocketId(a), SocketId(b)).unwrap();
                assert_eq!(id, t.interconnect(SocketId(b), SocketId(a)).unwrap());
                ids.push(id.0);
            }
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 6);
        // All ids are interconnect-kind entries.
        for &i in &ids {
            assert!(matches!(t.get(ResourceId(i)).kind, ResourceKind::Interconnect(_)));
        }
    }

    #[test]
    fn toy_machine_matches_figure_3() {
        let t = ResourceTable::from_spec(&MachineSpec::toy());
        assert_eq!(t.get(t.core_issue(CoreId(0))).capacity, 10.0);
        assert_eq!(t.get(t.dram(SocketId(0))).capacity, 100.0);
        assert_eq!(t.get(t.interconnect(SocketId(0), SocketId(1)).unwrap()).capacity, 50.0);
    }

    #[test]
    fn frequency_scales_core_clocked_capacities_only() {
        let spec = MachineSpec::x5_2();
        let nominal = CapacityProfile::of_spec_at(&spec, 2.3);
        let boosted = CapacityProfile::of_spec_at(&spec, 3.6);
        assert!(boosted.core_issue > nominal.core_issue);
        assert!(boosted.l1_per_core > nominal.l1_per_core);
        assert_eq!(boosted.dram_per_socket, nominal.dram_per_socket);
        assert_eq!(boosted.interconnect_per_link, nominal.interconnect_per_link);
        let ratio = boosted.core_issue / nominal.core_issue;
        assert!((ratio - 3.6 / 2.3).abs() < 1e-12);
    }

    #[test]
    fn labels_are_distinct() {
        let t = table();
        let mut labels: Vec<String> = t.resources().iter().map(|r| r.kind.label()).collect();
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before);
    }
}
