//! Machine specifications and the DVFS (Turbo Boost) frequency model.
//!
//! A [`MachineSpec`] is the *ground truth* physical description used by the
//! simulator. Pandia itself never reads capacities from the spec: its
//! machine description generator (see `pandia-core`) measures them by
//! running stress applications through the [`crate::Platform`] interface,
//! exactly as the paper does on real hardware (§3).

use serde::{Deserialize, Serialize};

use crate::{
    error::TopologyError,
    ids::{CoreId, CtxId, SocketId},
};

/// Frequency model for Intel-style Turbo Boost (paper §6.3, Figure 14).
///
/// The achieved core frequency depends on how many cores of the same chip
/// are active: a single active core may run at the maximum boost frequency,
/// and the frequency steps down towards the all-core boost frequency as more
/// cores wake up. With boost disabled the chip runs at its nominal frequency
/// regardless of occupancy (which is *slower* than the all-core boost — the
/// paper notes that disabling Turbo Boost is a net loss even when all cores
/// are busy).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TurboCurve {
    /// Nominal (base) frequency in GHz; used when boost is disabled.
    pub nominal_ghz: f64,
    /// Boost frequency with a single active core, in GHz.
    pub single_core_ghz: f64,
    /// Boost frequency with every core of the chip active, in GHz.
    pub all_core_ghz: f64,
}

impl TurboCurve {
    /// Creates a flat curve (no boost): every occupancy runs at `ghz`.
    pub fn flat(ghz: f64) -> Self {
        Self { nominal_ghz: ghz, single_core_ghz: ghz, all_core_ghz: ghz }
    }

    /// Returns the chip frequency in GHz for `active_cores` busy cores out
    /// of `cores_per_socket`, with boost enabled or disabled.
    ///
    /// The boost curve interpolates linearly between the single-core and
    /// all-core boost points, which matches the stepwise tables Intel
    /// publishes closely enough for modeling purposes.
    pub fn frequency_ghz(&self, active_cores: usize, cores_per_socket: usize, boost: bool) -> f64 {
        if !boost {
            return self.nominal_ghz;
        }
        if active_cores <= 1 || cores_per_socket <= 1 {
            return self.single_core_ghz;
        }
        let span = (cores_per_socket - 1) as f64;
        let pos = (active_cores.min(cores_per_socket) - 1) as f64;
        self.single_core_ghz + (self.all_core_ghz - self.single_core_ghz) * pos / span
    }

    /// Ratio of the frequency at `active_cores` to the all-core-active
    /// frequency, used to normalize profiling measurements.
    pub fn relative_to_all_core(
        &self,
        active_cores: usize,
        cores_per_socket: usize,
        boost: bool,
    ) -> f64 {
        let f = self.frequency_ghz(active_cores, cores_per_socket, boost);
        let all = self.frequency_ghz(cores_per_socket, cores_per_socket, boost);
        f / all
    }
}

/// The *structure* of a machine: socket/core/SMT counts only.
///
/// Pandia's predictor works from a measured machine description plus this
/// shape; it never consults the physical capacities of a [`MachineSpec`].
/// The shape is what the operating system reports about topology (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MachineShape {
    /// Number of processor sockets.
    pub sockets: usize,
    /// Physical cores per socket.
    pub cores_per_socket: usize,
    /// Hardware thread slots per core.
    pub threads_per_core: usize,
}

impl MachineShape {
    /// Total number of physical cores.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total number of hardware contexts.
    pub fn total_contexts(&self) -> usize {
        self.total_cores() * self.threads_per_core
    }

    /// Socket owning a global core id.
    pub fn socket_of_core(&self, core: CoreId) -> SocketId {
        SocketId(core.0 / self.cores_per_socket)
    }

    /// Core owning a global context id.
    pub fn core_of_ctx(&self, ctx: CtxId) -> CoreId {
        CoreId(ctx.0 / self.threads_per_core)
    }

    /// Socket owning a global context id.
    pub fn socket_of_ctx(&self, ctx: CtxId) -> SocketId {
        self.socket_of_core(self.core_of_ctx(ctx))
    }

    /// Global context id of SMT `slot` on `core_in_socket` of `socket`.
    pub fn ctx(&self, socket: SocketId, core_in_socket: usize, slot: usize) -> CtxId {
        let core = socket.0 * self.cores_per_socket + core_in_socket;
        CtxId(core * self.threads_per_core + slot)
    }
}

/// Anything that exposes a machine's structural shape.
pub trait HasShape {
    /// The socket/core/SMT structure.
    fn shape(&self) -> MachineShape;
}

impl HasShape for MachineShape {
    fn shape(&self) -> MachineShape {
        *self
    }
}

impl HasShape for MachineSpec {
    fn shape(&self) -> MachineShape {
        MachineShape {
            sockets: self.sockets,
            cores_per_socket: self.cores_per_socket,
            threads_per_core: self.threads_per_core,
        }
    }
}

/// Physical description of a cache-coherent shared-memory machine.
///
/// Bandwidths are in GB/s; instruction rates in giga-instructions per
/// second. Capacities that scale with the core clock (`core` issue rate and
/// the private L1/L2 links) are given *at nominal frequency*; the simulator
/// scales them by the current DVFS point. Uncore capacities (L3, DRAM,
/// interconnect) are frequency-independent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Marketing name of the model, e.g. `"X5-2 (Haswell)"`.
    pub name: String,
    /// Number of processor sockets (chips).
    pub sockets: usize,
    /// Number of physical cores per socket.
    pub cores_per_socket: usize,
    /// Number of hardware thread slots (SMT contexts) per core.
    pub threads_per_core: usize,
    /// Peak instruction issue rate per core at nominal frequency.
    pub core_ipc_rate: f64,
    /// Multiplier applied to a core's issue capacity when both SMT slots are
    /// occupied, modeling front-end contention (≤ 1.0).
    pub smt_frontend_factor: f64,
    /// Fraction of a core's issue width a *single* thread can sustain
    /// (dependency/ILP limit, < 1.0 on real cores). Two SMT threads can
    /// jointly exceed this, up to `smt_frontend_factor` of the full width —
    /// which is why SMT adds throughput in Figure 14's 37-72 thread region.
    pub single_thread_ilp: f64,
    /// Per-unit latency a thread pays for each co-resident SMT thread's
    /// burst excess (`m - 1` during the peer's high-demand phase): the
    /// front-end interference behind the paper's core-burstiness factor
    /// (§2.3). 0.0 disables the effect.
    pub smt_burst_collision: f64,
    /// Per-core L1 bandwidth at nominal frequency.
    pub l1_bw_per_core: f64,
    /// Per-core L2 bandwidth at nominal frequency.
    pub l2_bw_per_core: f64,
    /// Per-core link bandwidth into the shared L3.
    pub l3_bw_per_link: f64,
    /// Aggregate L3 bandwidth sustainable per socket (less than
    /// `cores_per_socket * l3_bw_per_link` on wide chips — paper §3.1).
    pub l3_bw_aggregate: f64,
    /// DRAM bandwidth per socket (all channels combined).
    pub dram_bw_per_socket: f64,
    /// Bandwidth of each inter-socket interconnect link. The interconnect is
    /// fully connected: one link per unordered socket pair.
    pub interconnect_bw_per_link: f64,
    /// One-way latency cost factor of crossing sockets, in abstract time
    /// units per unit of communication; feeds the simulator's communication
    /// model.
    pub interconnect_latency: f64,
    /// L1 data cache size per core, KiB.
    pub l1_kib: f64,
    /// L2 cache size per core, KiB.
    pub l2_kib: f64,
    /// Shared L3 size per socket, MiB.
    pub l3_mib: f64,
    /// Whether the LLC uses adaptive insertion policies (paper §2.2): if
    /// true, performance falls off gradually when the working set outgrows
    /// the cache; if false (older parts such as Westmere), there is a sharp
    /// cliff.
    pub adaptive_llc: bool,
    /// Whether the cores implement AVX (Sort-Join requires it; the X2-4
    /// Westmere does not have it — paper §6.2).
    pub has_avx: bool,
    /// DVFS model.
    pub turbo: TurboCurve,
}

impl MachineSpec {
    /// Validates structural and capacity invariants.
    pub fn validate(&self) -> Result<(), TopologyError> {
        let check = |ok: bool, reason: &str| -> Result<(), TopologyError> {
            if ok {
                Ok(())
            } else {
                Err(TopologyError::InvalidSpec { reason: reason.to_string() })
            }
        };
        check(self.sockets >= 1, "machine must have at least one socket")?;
        check(self.cores_per_socket >= 1, "sockets must have at least one core")?;
        check(self.threads_per_core >= 1, "cores must have at least one hardware thread")?;
        check(self.core_ipc_rate > 0.0, "core instruction rate must be positive")?;
        check(
            self.smt_frontend_factor > 0.0 && self.smt_frontend_factor <= 1.0,
            "SMT front-end factor must be in (0, 1]",
        )?;
        check(
            self.single_thread_ilp > 0.0 && self.single_thread_ilp <= 1.0,
            "single-thread ILP fraction must be in (0, 1]",
        )?;
        check(
            self.smt_burst_collision >= 0.0 && self.smt_burst_collision <= 2.0,
            "SMT burst-collision cost must be in [0, 2]",
        )?;
        for (v, what) in [
            (self.l1_bw_per_core, "L1 bandwidth must be positive and finite"),
            (self.l2_bw_per_core, "L2 bandwidth must be positive and finite"),
            (self.l3_bw_per_link, "L3 link bandwidth must be positive and finite"),
            (self.l3_bw_aggregate, "L3 aggregate bandwidth must be positive and finite"),
            (self.dram_bw_per_socket, "DRAM bandwidth must be positive and finite"),
        ] {
            check(v > 0.0 && v.is_finite(), what)?;
        }
        check(
            self.sockets == 1 || self.interconnect_bw_per_link > 0.0,
            "multi-socket machines need interconnect bandwidth",
        )?;
        check(
            self.turbo.nominal_ghz > 0.0
                && self.turbo.single_core_ghz >= self.turbo.all_core_ghz
                && self.turbo.all_core_ghz > 0.0,
            "turbo curve must satisfy single-core >= all-core > 0",
        )?;
        Ok(())
    }

    /// Total number of physical cores in the machine.
    pub fn total_cores(&self) -> usize {
        self.sockets * self.cores_per_socket
    }

    /// Total number of hardware contexts (SMT slots) in the machine.
    pub fn total_contexts(&self) -> usize {
        self.total_cores() * self.threads_per_core
    }

    /// Socket that owns a global core id.
    pub fn socket_of_core(&self, core: CoreId) -> SocketId {
        SocketId(core.0 / self.cores_per_socket)
    }

    /// Core that owns a global hardware context id.
    pub fn core_of_ctx(&self, ctx: CtxId) -> CoreId {
        CoreId(ctx.0 / self.threads_per_core)
    }

    /// Socket that owns a global hardware context id.
    pub fn socket_of_ctx(&self, ctx: CtxId) -> SocketId {
        self.socket_of_core(self.core_of_ctx(ctx))
    }

    /// Global context id of SMT `slot` on `core` of `socket`.
    pub fn ctx(&self, socket: SocketId, core_in_socket: usize, slot: usize) -> CtxId {
        let core = socket.0 * self.cores_per_socket + core_in_socket;
        CtxId(core * self.threads_per_core + slot)
    }

    /// Number of unordered socket pairs (interconnect links).
    pub fn interconnect_links(&self) -> usize {
        self.sockets * self.sockets.saturating_sub(1) / 2
    }

    /// Index of the interconnect link between two distinct sockets in the
    /// canonical unordered-pair ordering `(0,1), (0,2), ..., (1,2), ...`.
    pub fn link_index(&self, a: SocketId, b: SocketId) -> Option<usize> {
        if a == b {
            return None;
        }
        let (lo, hi) = if a.0 < b.0 { (a.0, b.0) } else { (b.0, a.0) };
        // Links with first endpoint < lo, then offset within lo's group.
        let before: usize = (0..lo).map(|s| self.sockets - 1 - s).sum();
        Some(before + (hi - lo - 1))
    }

    /// The effective core issue capacity at a given frequency (GHz).
    pub fn core_capacity_at(&self, ghz: f64) -> f64 {
        self.core_ipc_rate * ghz / self.turbo.nominal_ghz
    }

    /// Two-socket Haswell system (Oracle X5-2, Xeon E5-2699 v3): 18 cores
    /// per socket, 72 hardware threads — the largest machine in §6.1.
    pub fn x5_2() -> Self {
        Self {
            name: "X5-2 (Haswell)".into(),
            sockets: 2,
            cores_per_socket: 18,
            threads_per_core: 2,
            core_ipc_rate: 9.2, // 4-wide at 2.3 GHz nominal
            smt_frontend_factor: 0.92,
            single_thread_ilp: 0.78,
            smt_burst_collision: 0.30,
            l1_bw_per_core: 95.0,
            l2_bw_per_core: 45.0,
            l3_bw_per_link: 28.0,
            l3_bw_aggregate: 320.0,
            dram_bw_per_socket: 62.0,
            interconnect_bw_per_link: 38.0,
            interconnect_latency: 1.0,
            l1_kib: 32.0,
            l2_kib: 256.0,
            l3_mib: 45.0,
            adaptive_llc: true,
            has_avx: true,
            turbo: TurboCurve { nominal_ghz: 2.3, single_core_ghz: 3.6, all_core_ghz: 2.8 },
        }
    }

    /// Two-socket Ivy Bridge system (Oracle X4-2): 8 cores per socket, 32
    /// hardware threads.
    pub fn x4_2() -> Self {
        Self {
            name: "X4-2 (Ivy Bridge)".into(),
            sockets: 2,
            cores_per_socket: 8,
            threads_per_core: 2,
            core_ipc_rate: 13.2, // 4-wide at 3.3 GHz nominal
            smt_frontend_factor: 0.91,
            single_thread_ilp: 0.8,
            smt_burst_collision: 0.28,
            l1_bw_per_core: 130.0,
            l2_bw_per_core: 55.0,
            l3_bw_per_link: 30.0,
            l3_bw_aggregate: 190.0,
            dram_bw_per_socket: 55.0,
            interconnect_bw_per_link: 32.0,
            interconnect_latency: 1.05,
            l1_kib: 32.0,
            l2_kib: 256.0,
            l3_mib: 25.0,
            adaptive_llc: true,
            has_avx: true,
            turbo: TurboCurve { nominal_ghz: 3.3, single_core_ghz: 4.0, all_core_ghz: 3.6 },
        }
    }

    /// Two-socket Sandy Bridge system (Oracle X3-2): 8 cores per socket, 32
    /// hardware threads.
    pub fn x3_2() -> Self {
        Self {
            name: "X3-2 (Sandy Bridge)".into(),
            sockets: 2,
            cores_per_socket: 8,
            threads_per_core: 2,
            core_ipc_rate: 11.6, // 4-wide at 2.9 GHz nominal
            smt_frontend_factor: 0.90,
            single_thread_ilp: 0.78,
            smt_burst_collision: 0.30,
            l1_bw_per_core: 110.0,
            l2_bw_per_core: 48.0,
            l3_bw_per_link: 26.0,
            l3_bw_aggregate: 160.0,
            dram_bw_per_socket: 48.0,
            interconnect_bw_per_link: 30.0,
            interconnect_latency: 1.1,
            l1_kib: 32.0,
            l2_kib: 256.0,
            l3_mib: 20.0,
            adaptive_llc: true,
            has_avx: true,
            turbo: TurboCurve { nominal_ghz: 2.9, single_core_ghz: 3.8, all_core_ghz: 3.3 },
        }
    }

    /// Four-socket Westmere system (Oracle X2-4): 10 cores per socket, 80
    /// hardware threads, no adaptive caches, no AVX (paper §6.2).
    pub fn x2_4() -> Self {
        Self {
            name: "X2-4 (Westmere)".into(),
            sockets: 4,
            cores_per_socket: 10,
            threads_per_core: 2,
            core_ipc_rate: 9.6, // 4-wide at 2.4 GHz nominal
            smt_frontend_factor: 0.88,
            single_thread_ilp: 0.74,
            smt_burst_collision: 0.40,
            l1_bw_per_core: 80.0,
            l2_bw_per_core: 38.0,
            l3_bw_per_link: 20.0,
            l3_bw_aggregate: 120.0,
            dram_bw_per_socket: 34.0,
            interconnect_bw_per_link: 25.0,
            interconnect_latency: 1.4,
            l1_kib: 32.0,
            l2_kib: 256.0,
            l3_mib: 30.0,
            adaptive_llc: false,
            has_avx: false,
            turbo: TurboCurve { nominal_ghz: 2.4, single_core_ghz: 2.8, all_core_ghz: 2.67 },
        }
    }

    /// The toy machine of the paper's worked example (Figure 3): two
    /// dual-core sockets with no caches, instruction throughput 10 per core,
    /// memory bandwidth 100 per socket and an interconnect of 50.
    ///
    /// Cache links get effectively unlimited capacity so they never contend,
    /// matching the "no caches" simplification of the example.
    pub fn toy() -> Self {
        const UNLIMITED: f64 = 1.0e12;
        Self {
            name: "toy (Figure 3)".into(),
            sockets: 2,
            cores_per_socket: 2,
            threads_per_core: 1,
            core_ipc_rate: 10.0,
            smt_frontend_factor: 1.0,
            single_thread_ilp: 1.0,
            smt_burst_collision: 0.0,
            l1_bw_per_core: UNLIMITED,
            l2_bw_per_core: UNLIMITED,
            l3_bw_per_link: UNLIMITED,
            l3_bw_aggregate: UNLIMITED,
            dram_bw_per_socket: 100.0,
            interconnect_bw_per_link: 50.0,
            interconnect_latency: 1.0,
            l1_kib: 0.0,
            l2_kib: 0.0,
            l3_mib: 0.0,
            adaptive_llc: true,
            has_avx: true,
            turbo: TurboCurve::flat(1.0),
        }
    }

    /// All four evaluated machine presets, largest two-socket first.
    pub fn evaluation_machines() -> Vec<Self> {
        vec![Self::x5_2(), Self::x4_2(), Self::x3_2(), Self::x2_4()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for m in MachineSpec::evaluation_machines() {
            m.validate().unwrap_or_else(|e| panic!("{} invalid: {e}", m.name));
        }
        MachineSpec::toy().validate().unwrap();
    }

    #[test]
    fn x5_2_dimensions_match_paper() {
        let m = MachineSpec::x5_2();
        assert_eq!(m.total_cores(), 36);
        assert_eq!(m.total_contexts(), 72);
    }

    #[test]
    fn x2_4_dimensions_match_paper() {
        let m = MachineSpec::x2_4();
        assert_eq!(m.sockets, 4);
        assert_eq!(m.total_contexts(), 80);
        assert!(!m.adaptive_llc);
        assert!(!m.has_avx);
    }

    #[test]
    fn ctx_mapping_round_trips() {
        let m = MachineSpec::x5_2();
        let ctx = m.ctx(SocketId(1), 3, 1);
        assert_eq!(m.socket_of_ctx(ctx), SocketId(1));
        assert_eq!(m.core_of_ctx(ctx), CoreId(18 + 3));
        assert_eq!(ctx.0 % m.threads_per_core, 1);
    }

    #[test]
    fn link_index_covers_all_pairs_once() {
        let m = MachineSpec::x2_4();
        let mut seen = vec![false; m.interconnect_links()];
        for a in 0..m.sockets {
            for b in 0..m.sockets {
                let idx = m.link_index(SocketId(a), SocketId(b));
                if a == b {
                    assert!(idx.is_none());
                } else {
                    let idx = idx.unwrap();
                    assert_eq!(idx, m.link_index(SocketId(b), SocketId(a)).unwrap());
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s), "every link index hit");
        assert_eq!(m.interconnect_links(), 6);
    }

    #[test]
    fn turbo_interpolates_between_boost_points() {
        let t = TurboCurve { nominal_ghz: 2.3, single_core_ghz: 3.6, all_core_ghz: 2.8 };
        assert_eq!(t.frequency_ghz(1, 18, true), 3.6);
        assert_eq!(t.frequency_ghz(18, 18, true), 2.8);
        let mid = t.frequency_ghz(9, 18, true);
        assert!(mid < 3.6 && mid > 2.8);
        assert_eq!(t.frequency_ghz(5, 18, false), 2.3);
        // Disabling boost is never faster than all-core boost.
        assert!(t.frequency_ghz(18, 18, false) < t.frequency_ghz(18, 18, true));
    }

    #[test]
    fn turbo_monotone_decreasing_in_occupancy() {
        let t = MachineSpec::x5_2().turbo;
        let mut prev = f64::INFINITY;
        for a in 1..=18 {
            let f = t.frequency_ghz(a, 18, true);
            assert!(f <= prev + 1e-12);
            prev = f;
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut m = MachineSpec::x3_2();
        m.sockets = 0;
        assert!(m.validate().is_err());
        let mut m = MachineSpec::x3_2();
        m.smt_frontend_factor = 1.5;
        assert!(m.validate().is_err());
        let mut m = MachineSpec::x3_2();
        m.dram_bw_per_socket = -1.0;
        assert!(m.validate().is_err());
    }

    #[test]
    fn shape_mapping_agrees_with_spec_helpers() {
        let spec = MachineSpec::x2_4();
        let shape = spec.shape();
        assert_eq!(shape.total_cores(), spec.total_cores());
        assert_eq!(shape.total_contexts(), spec.total_contexts());
        for ctx in [0, 1, 19, 20, 79] {
            let c = CtxId(ctx);
            assert_eq!(shape.core_of_ctx(c), spec.core_of_ctx(c));
            assert_eq!(shape.socket_of_ctx(c), spec.socket_of_ctx(c));
        }
        assert_eq!(shape.ctx(SocketId(2), 3, 1), spec.ctx(SocketId(2), 3, 1));
        // HasShape on a shape is the identity.
        assert_eq!(shape.shape(), shape);
    }

    #[test]
    fn turbo_relative_to_all_core_normalizes() {
        let t = MachineSpec::x5_2().turbo;
        assert!((t.relative_to_all_core(18, 18, true) - 1.0).abs() < 1e-12);
        assert!(t.relative_to_all_core(1, 18, true) > 1.2);
        assert_eq!(t.relative_to_all_core(1, 18, false), 1.0);
    }

    #[test]
    fn single_thread_ilp_below_smt_combined_width() {
        // Structural premise of the SMT model: one thread cannot reach
        // what two threads jointly can.
        for m in MachineSpec::evaluation_machines() {
            assert!(
                m.single_thread_ilp < m.smt_frontend_factor,
                "{}: ILP {} must be below SMT width share {}",
                m.name,
                m.single_thread_ilp,
                m.smt_frontend_factor
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let m = MachineSpec::x5_2();
        let json = serde_json::to_string(&m).unwrap();
        let back: MachineSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
