//! Export sinks: Chrome trace-event JSON and JSON Lines streams.
//!
//! The serializers here are hand-rolled (the crate is dependency-free by
//! design); outputs are plain JSON that `chrome://tracing`, Perfetto, and
//! any JSON parser accept.

use crate::recorder::{ArgValue, Recorder, Track, HISTOGRAM_BUCKET_BOUNDS};
use crate::schema::{EVENTS_SCHEMA, METRICS_SCHEMA, TRACE_SCHEMA};

/// Chrome trace-event `pid` used for wall-clock spans.
const PID_WALL: u32 = 1;
/// Chrome trace-event `pid` used for simulated-time spans.
const PID_SIM: u32 = 2;

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn push_str_value(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Formats an `f64` as a JSON number. JSON has no NaN/infinity, so
/// non-finite values degrade to `0`.
fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push('0');
    }
}

fn push_args_object(out: &mut String, args: &[(String, ArgValue)]) {
    out.push('{');
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_str_value(out, key);
        out.push(':');
        match value {
            ArgValue::Str(s) => push_str_value(out, s),
            ArgValue::F64(v) => push_f64(out, *v),
            ArgValue::U64(v) => out.push_str(&format!("{v}")),
        }
    }
    out.push('}');
}

fn track_pid(track: Track) -> u32 {
    match track {
        Track::Wall => PID_WALL,
        Track::Sim => PID_SIM,
    }
}

/// Renders one span event as a single events-JSONL line (including the
/// trailing newline). Shared by [`Recorder::events_jsonl`] and the
/// incremental [`EventsStream`] so batch and live exports are
/// byte-compatible line by line.
fn push_event_line(out: &mut String, event: &crate::recorder::SpanEvent) {
    out.push_str("{\"type\":\"span\",\"cat\":");
    push_str_value(out, event.cat);
    out.push_str(",\"name\":");
    push_str_value(out, &event.name);
    let track = match event.track {
        Track::Wall => "wall",
        Track::Sim => "sim",
    };
    out.push_str(&format!(
        ",\"seq\":{},\"track\":\"{track}\",\"tid\":{},\"ts_us\":",
        event.seq, event.tid
    ));
    push_f64(out, event.ts_us);
    out.push_str(",\"dur_us\":");
    push_f64(out, event.dur_us);
    out.push_str(",\"args\":");
    push_args_object(out, &event.args);
    out.push_str("}\n");
}

impl Recorder {
    /// Renders everything recorded so far as a Chrome trace-event JSON
    /// document, openable in `chrome://tracing` or Perfetto.
    ///
    /// Layout: wall-clock spans live under pid 1 ("pandia (wall clock)"),
    /// one lane per recording thread; simulated-time spans (bridged from
    /// `RunTrace`) live under pid 2 ("pandia (simulated time)"). Each span
    /// is a complete `"ph":"X"` event whose args carry the logical
    /// sequence number; every counter becomes a `"ph":"C"` event holding
    /// its final value.
    pub fn chrome_trace_json(&self) -> String {
        let events = self.span_events();
        let snapshot = self.metrics_snapshot();
        let mut out = String::with_capacity(4096);
        out.push_str("{\"traceEvents\":[");
        let mut first = true;
        let mut emit_sep = |out: &mut String| {
            if first {
                first = false;
            } else {
                out.push(',');
            }
        };

        for (pid, label) in
            [(PID_WALL, "pandia (wall clock)"), (PID_SIM, "pandia (simulated time)")]
        {
            emit_sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ));
        }

        let mut lanes: Vec<(u32, u32)> = events.iter().map(|e| (track_pid(e.track), e.tid)).collect();
        lanes.sort_unstable();
        lanes.dedup();
        for (pid, tid) in lanes {
            let kind = if pid == PID_SIM { "lane" } else { "thread" };
            emit_sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{kind} {tid}\"}}}}"
            ));
        }

        let mut end_ts = 0.0f64;
        for event in &events {
            emit_sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"cat\":",
                track_pid(event.track),
                event.tid
            ));
            push_str_value(&mut out, event.cat);
            out.push_str(",\"name\":");
            push_str_value(&mut out, &event.name);
            out.push_str(",\"ts\":");
            push_f64(&mut out, event.ts_us);
            out.push_str(",\"dur\":");
            push_f64(&mut out, event.dur_us);
            out.push_str(",\"args\":");
            let mut args = Vec::with_capacity(event.args.len() + 1);
            args.push(("seq".to_string(), ArgValue::U64(event.seq)));
            args.extend(event.args.iter().cloned());
            push_args_object(&mut out, &args);
            out.push('}');
            if event.track == Track::Wall {
                end_ts = end_ts.max(event.ts_us + event.dur_us);
            }
        }

        for (name, value) in &snapshot.counters {
            emit_sep(&mut out);
            out.push_str(&format!("{{\"ph\":\"C\",\"pid\":{PID_WALL},\"tid\":0,\"name\":"));
            push_str_value(&mut out, name);
            out.push_str(",\"ts\":");
            push_f64(&mut out, end_ts);
            out.push_str(&format!(",\"args\":{{\"value\":{value}}}}}"));
        }

        out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"generator\":\"pandia-obs\",");
        out.push_str(&format!(
            "\"schema\":\"{TRACE_SCHEMA}\",\"spans\":{},\"dropped_spans\":{}}}}}",
            snapshot.spans, snapshot.dropped_spans
        ));
        out
    }

    /// Renders the metrics registry as JSON Lines: a meta line tagged
    /// [`METRICS_SCHEMA`] (carrying the shared histogram bucket bounds),
    /// then one line per counter, gauge, and histogram, and a final
    /// span-bookkeeping line.
    pub fn metrics_jsonl(&self) -> String {
        let snapshot = self.metrics_snapshot();
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("{{\"schema\":\"{METRICS_SCHEMA}\",\"bucket_bounds\":["));
        for (i, bound) in HISTOGRAM_BUCKET_BOUNDS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_f64(&mut out, *bound);
        }
        out.push_str("]}\n");
        for (name, value) in &snapshot.counters {
            out.push_str("{\"type\":\"counter\",\"name\":");
            push_str_value(&mut out, name);
            out.push_str(&format!(",\"value\":{value}}}\n"));
        }
        for (name, value) in &snapshot.gauges {
            out.push_str("{\"type\":\"gauge\",\"name\":");
            push_str_value(&mut out, name);
            out.push_str(",\"value\":");
            push_f64(&mut out, *value);
            out.push_str("}\n");
        }
        for (name, hist) in &snapshot.histograms {
            out.push_str("{\"type\":\"histogram\",\"name\":");
            push_str_value(&mut out, name);
            out.push_str(&format!(",\"count\":{},\"sum\":", hist.count));
            push_f64(&mut out, hist.sum);
            out.push_str(",\"counts\":[");
            for (i, count) in hist.counts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{count}"));
            }
            out.push_str("]}\n");
        }
        out.push_str(&format!(
            "{{\"type\":\"spans\",\"recorded\":{},\"dropped\":{}}}\n",
            snapshot.spans, snapshot.dropped_spans
        ));
        out
    }

    /// Renders the live registry state as a JSON *fragment* (no
    /// surrounding braces) for embedding into a
    /// [`SNAPSHOT_SCHEMA`](crate::schema::SNAPSHOT_SCHEMA)
    /// heartbeat line: every counter and gauge by name, each histogram's
    /// count plus estimated p50/p99 (see
    /// [`HistogramSnapshot::quantile`](crate::HistogramSnapshot::quantile)
    /// for the power-of-two-bucket error bound), and the span-buffer
    /// bookkeeping — including the `dropped` count, so a lossy capture
    /// is visible in every heartbeat rather than only at exit.
    pub fn snapshot_fields(&self) -> String {
        let snapshot = self.metrics_snapshot();
        let mut out = String::with_capacity(512);
        out.push_str("\"counters\":{");
        for (i, (name, value)) in snapshot.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_value(&mut out, name);
            out.push_str(&format!(":{value}"));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_value(&mut out, name);
            out.push(':');
            push_f64(&mut out, *value);
        }
        out.push_str("},\"quantiles\":{");
        for (i, (name, hist)) in snapshot.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_value(&mut out, name);
            out.push_str(&format!(":{{\"count\":{},\"p50\":", hist.count));
            push_f64(&mut out, hist.quantile(0.5));
            out.push_str(",\"p99\":");
            push_f64(&mut out, hist.quantile(0.99));
            out.push('}');
        }
        out.push_str(&format!(
            "}},\"spans\":{},\"dropped\":{}",
            snapshot.spans, snapshot.dropped_spans
        ));
        out
    }

    /// Renders the raw span events as JSON Lines: a meta line tagged
    /// [`EVENTS_SCHEMA`], then one line per span in logical-sequence
    /// order.
    pub fn events_jsonl(&self) -> String {
        let events = self.span_events();
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("{{\"schema\":\"{EVENTS_SCHEMA}\"}}\n"));
        for event in &events {
            push_event_line(&mut out, event);
        }
        // A lossy capture must say so in-band: consumers of the events
        // file (pandia-report) otherwise have no way to tell a complete
        // trace from one whose buffer overflowed.
        let dropped = self.dropped_spans();
        if dropped > 0 {
            out.push_str(&format!("{{\"type\":\"dropped\",\"count\":{dropped}}}\n"));
        }
        out
    }
}

/// An append-only live export of span events to a JSONL file, for
/// watching long runs (e.g. the `pandiad` event loop) in flight.
///
/// [`EventsStream::create`] writes the [`EVENTS_SCHEMA`] meta line;
/// each [`EventsStream::poll`] appends every span recorded since the
/// previous poll, in sequence order within the batch. Spans that are
/// still open at a poll (their guard has not dropped yet) are picked up
/// by a later poll — the stream tracks the low-water sequence mark and a
/// small set of already-emitted out-of-order spans, so nothing is
/// emitted twice and nothing completed is lost.
#[derive(Debug)]
pub struct EventsStream {
    path: std::path::PathBuf,
    /// Every span with `seq < low_water` has been emitted.
    low_water: u64,
    /// Emitted spans with `seq >= low_water` (gaps from spans that were
    /// still open when later ones completed). Drained as the low-water
    /// mark advances, so it stays bounded by the number of concurrently
    /// open spans.
    emitted: std::collections::BTreeSet<u64>,
    /// Buffer-overflow drops already reported into the stream; a poll
    /// that observes a larger recorder drop count appends a
    /// `{"type":"dropped"}` line so live consumers see the loss as it
    /// happens.
    dropped_reported: u64,
}

impl EventsStream {
    /// Creates (truncating) the stream file and writes the meta line.
    pub fn create(path: impl Into<std::path::PathBuf>) -> std::io::Result<Self> {
        let path = path.into();
        std::fs::write(&path, format!("{{\"schema\":\"{EVENTS_SCHEMA}\"}}\n"))?;
        Ok(Self {
            path,
            low_water: 0,
            emitted: std::collections::BTreeSet::new(),
            dropped_reported: 0,
        })
    }

    /// The file this stream appends to.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Appends every newly completed span to the file; returns how many
    /// lines were written.
    pub fn poll(&mut self, recorder: &Recorder) -> std::io::Result<usize> {
        let events = recorder.span_events_since(self.low_water);
        let mut out = String::new();
        let mut appended = 0usize;
        for event in &events {
            if !self.emitted.insert(event.seq) {
                continue;
            }
            push_event_line(&mut out, event);
            appended += 1;
        }
        while self.emitted.remove(&self.low_water) {
            self.low_water += 1;
        }
        let dropped = recorder.dropped_spans();
        if dropped > self.dropped_reported {
            out.push_str(&format!("{{\"type\":\"dropped\",\"count\":{dropped}}}\n"));
            self.dropped_reported = dropped;
            appended += 1;
        }
        if appended > 0 {
            use std::io::Write;
            let mut file =
                std::fs::OpenOptions::new().append(true).open(&self.path)?;
            file.write_all(out.as_bytes())?;
        }
        Ok(appended)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SNAPSHOT_SCHEMA;
    use crate::recorder::Recorder;
    use serde::Value;

    fn sample_recorder() -> Recorder {
        let r = Recorder::new();
        {
            let _span = r.span("search", "placement_report").arg("candidates", 42u64);
            let _inner = r.span("predictor", "predict").arg("job", "stream\"44");
        }
        r.record_span_at(crate::SpanEvent {
            cat: "sim",
            name: "segment".to_string(),
            seq: 0,
            tid: 0,
            track: Track::Sim,
            ts_us: 0.0,
            dur_us: 1.5e6,
            args: vec![],
        });
        r.add("predict.cache.hits", 7);
        r.add("predict.cache.misses", 3);
        r.gauge_set("exec.jobs", 4.0);
        r.observe("predict.eval_us", 123.0);
        r
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_shape() {
        let r = sample_recorder();
        let parsed = serde_json::from_str::<Value>(&r.chrome_trace_json()).expect("valid JSON");
        let obj = parsed.as_object().expect("top-level object");
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v.as_array().expect("array"))
            .expect("traceEvents");
        let phase = |e: &Value, want: &str| {
            e.as_object()
                .and_then(|o| o.iter().find(|(k, _)| k == "ph"))
                .and_then(|(_, v)| v.as_str().map(|s| s == want))
                .unwrap_or(false)
        };
        assert!(events.iter().any(|e| phase(e, "M")));
        assert!(events.iter().any(|e| phase(e, "X")));
        assert!(events.iter().any(|e| phase(e, "C")));
        let cats: Vec<_> = events
            .iter()
            .filter_map(|e| e.as_object())
            .filter_map(|o| o.iter().find(|(k, _)| k == "cat"))
            .filter_map(|(_, v)| v.as_str().map(str::to_string))
            .collect();
        for cat in ["search", "predictor", "sim"] {
            assert!(cats.iter().any(|c| c == cat), "missing cat {cat}");
        }
        let trace = r.chrome_trace_json();
        assert!(trace.contains("predict.cache.hits"));
        assert!(trace.contains(TRACE_SCHEMA));
        // The quote in the span arg must have been escaped.
        assert!(trace.contains("stream\\\"44"));
    }

    #[test]
    fn metrics_jsonl_lines_each_parse() {
        let r = sample_recorder();
        let jsonl = r.metrics_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines.len() >= 5, "meta + 2 counters + gauge + histogram + spans");
        for line in &lines {
            serde_json::from_str::<Value>(line).expect("every line parses");
        }
        assert!(lines[0].contains(METRICS_SCHEMA));
        assert!(lines[0].contains("bucket_bounds"));
        assert!(jsonl.contains("\"type\":\"counter\""));
        assert!(jsonl.contains("\"type\":\"gauge\""));
        assert!(jsonl.contains("\"type\":\"histogram\""));
        assert!(jsonl.contains("\"type\":\"spans\""));
    }

    #[test]
    fn events_jsonl_lines_each_parse_in_seq_order() {
        let r = sample_recorder();
        let jsonl = r.events_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains(EVENTS_SCHEMA));
        let mut last_seq = -1i64;
        for line in &lines[1..] {
            let parsed = serde_json::from_str::<Value>(line).expect("line parses");
            let seq = parsed
                .as_object()
                .and_then(|o| o.iter().find(|(k, _)| k == "seq"))
                .and_then(|(_, v)| v.as_f64())
                .expect("seq field") as i64;
            assert!(seq > last_seq, "events out of order");
            last_seq = seq;
        }
        assert_eq!(lines.len(), 1 + 3);
    }

    #[test]
    fn events_stream_appends_incrementally_without_loss_or_duplication() {
        let r = Recorder::new();
        let dir = std::env::temp_dir().join(format!(
            "pandia-obs-stream-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let mut stream = EventsStream::create(&path).unwrap();

        // Batch 1: one completed span while an outer span stays open.
        let outer = r.span("search", "outer");
        {
            let _inner = r.span("predictor", "first");
        }
        assert_eq!(stream.poll(&r).unwrap(), 1);

        // Batch 2: the outer span completes (lower seq than `first`),
        // plus a fresh one. Both must appear exactly once.
        drop(outer);
        {
            let _late = r.span("predictor", "second");
        }
        assert_eq!(stream.poll(&r).unwrap(), 2);
        assert_eq!(stream.poll(&r).unwrap(), 0, "idempotent when nothing new");

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains(EVENTS_SCHEMA));
        assert_eq!(lines.len(), 1 + 3);
        let mut seqs = Vec::new();
        for line in &lines[1..] {
            let parsed = serde_json::from_str::<Value>(line).expect("line parses");
            let seq = parsed
                .as_object()
                .and_then(|o| o.iter().find(|(k, _)| k == "seq"))
                .and_then(|(_, v)| v.as_f64())
                .expect("seq field") as u64;
            seqs.push(seq);
        }
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 3, "each span exactly once");
        // Streamed lines are byte-identical to the batch export's lines.
        let batch = r.events_jsonl();
        for line in &lines[1..] {
            assert!(batch.contains(*line), "line missing from batch export: {line}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_fields_embed_into_a_valid_schema_line() {
        let r = sample_recorder();
        let line = format!(
            "{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"clock\":3,{}}}\n",
            r.snapshot_fields()
        );
        let parsed = serde_json::from_str::<Value>(line.trim()).expect("snapshot line parses");
        let obj = parsed.as_object().expect("object");
        let get = |k: &str| obj.iter().find(|(name, _)| name == k).map(|(_, v)| v);
        assert_eq!(get("schema").and_then(Value::as_str), Some(SNAPSHOT_SCHEMA));
        let counters = get("counters").and_then(Value::as_object).expect("counters");
        assert!(counters.iter().any(|(k, _)| k == "predict.cache.hits"));
        let quantiles = get("quantiles").and_then(Value::as_object).expect("quantiles");
        let (_, lat) = quantiles.iter().find(|(k, _)| k == "predict.eval_us").expect("hist");
        let lat = lat.as_object().unwrap();
        // One observation of 123.0 lands in bucket (64, 128]: both
        // quantiles interpolate to the bucket's upper bound.
        let q = |k: &str| {
            lat.iter().find(|(name, _)| name == k).and_then(|(_, v)| v.as_f64()).unwrap()
        };
        assert_eq!(q("p50"), 128.0);
        assert_eq!(q("p99"), 128.0);
        assert!(get("spans").is_some() && get("dropped").is_some());
    }

    #[test]
    fn dropped_spans_surface_in_events_export_and_stream() {
        let r = Recorder::with_max_events(1);
        {
            let _a = r.span("t", "kept");
        }
        {
            let _b = r.span("t", "lost");
        }
        let batch = r.events_jsonl();
        assert!(
            batch.ends_with("{\"type\":\"dropped\",\"count\":1}\n"),
            "batch export must end with the dropped line: {batch}"
        );

        let dir = std::env::temp_dir().join(format!(
            "pandia-obs-dropped-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let mut stream = EventsStream::create(&path).unwrap();
        // First poll sees the kept span and the drop that already
        // happened; the second poll reports a *new* drop only.
        assert_eq!(stream.poll(&r).unwrap(), 2);
        {
            let _c = r.span("t", "also-lost");
        }
        assert_eq!(stream.poll(&r).unwrap(), 1);
        assert_eq!(stream.poll(&r).unwrap(), 0, "no new drops, nothing to report");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("{\"type\":\"dropped\",\"count\":1}"), "{text}");
        assert!(text.contains("{\"type\":\"dropped\",\"count\":2}"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn non_finite_values_degrade_to_zero() {
        let r = Recorder::new();
        r.gauge_set("bad", f64::NAN);
        let jsonl = r.metrics_jsonl();
        for line in jsonl.lines() {
            serde_json::from_str::<Value>(line).expect("line parses despite NaN gauge");
        }
        assert!(jsonl.contains("\"name\":\"bad\",\"value\":0"));
    }
}
