//! The [`Recorder`]: thread-safe counters, gauges, histograms, and spans.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

/// Upper bounds of the fixed histogram buckets (powers of two). Every
/// histogram shares this bucketing, which keeps merging and export
/// trivial: observation `v` lands in the first bucket with `v <= bound`,
/// and anything beyond the last bound lands in the overflow bucket.
pub const HISTOGRAM_BUCKET_BOUNDS: [f64; 41] = {
    let mut bounds = [0.0; 41];
    let mut i = 0;
    while i < 41 {
        bounds[i] = (1u64 << i) as f64;
        i += 1;
    }
    bounds
};

/// Number of counts a histogram stores: one per bound plus overflow.
const HISTOGRAM_SLOTS: usize = HISTOGRAM_BUCKET_BOUNDS.len() + 1;

/// Default cap on stored span events; beyond it spans are counted as
/// dropped rather than growing memory without bound.
const DEFAULT_MAX_EVENTS: usize = 1 << 18;

/// A value attached to a span's `args` map.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// A string argument.
    Str(String),
    /// A float argument.
    F64(f64),
    /// An unsigned integer argument.
    U64(u64),
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

impl From<f64> for ArgValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

/// Which timeline a span lives on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Track {
    /// Real wall-clock time of the pipeline itself.
    Wall,
    /// Simulated time inside the fluid engine (used when bridging
    /// `pandia-sim`'s `RunTrace` segments into the trace file).
    Sim,
}

/// One completed span, ready for export.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Category (trace-viewer lane grouping): `"sim"`, `"predictor"`, ...
    pub cat: &'static str,
    /// Human-readable span name.
    pub name: String,
    /// Logical sequence number, assigned when the span *begins*. Spans
    /// can therefore be ordered by creation even when wall durations
    /// overlap across threads.
    pub seq: u64,
    /// Small dense id of the recording thread (`Track::Wall`) or of the
    /// virtual sim-time lane (`Track::Sim`).
    pub tid: u32,
    /// The timeline this span belongs to.
    pub track: Track,
    /// Start timestamp in microseconds (since recorder creation for wall
    /// spans; simulated microseconds for sim spans).
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Attached key/value arguments.
    pub args: Vec<(String, ArgValue)>,
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Per-bucket counts, aligned with [`HISTOGRAM_BUCKET_BOUNDS`] plus a
    /// final overflow slot.
    pub counts: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` in `[0, 1]`, so `0.5` is the
    /// median and `0.99` the p99) from the power-of-two bucket counts.
    ///
    /// The estimator finds the bucket holding the observation of rank
    /// `ceil(q * count)` and interpolates linearly between the bucket's
    /// lower and upper bound by the rank's position inside the bucket.
    ///
    /// **Error bound.** The true quantile and the estimate both lie in
    /// the same bucket `(lo, hi]`, and every bucket past the first has
    /// `hi = 2 * lo`, so the estimate is always within a **factor of 2**
    /// of the true quantile — a worst-case relative error of 100%
    /// (overestimating) or 50% (underestimating). For the first bucket
    /// (`(0, 1]`) the absolute error is at most 1. Observations beyond
    /// the last bound land in the overflow bucket, which has no upper
    /// bound: quantiles that fall there report the last finite bound and
    /// the error is unbounded (callers can detect this case by comparing
    /// against [`HISTOGRAM_BUCKET_BOUNDS`]'s last element).
    ///
    /// An empty histogram reports 0. `q` outside `[0, 1]` is clamped.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; q = 0 maps to rank 1.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (slot, &bucket_count) in self.counts.iter().enumerate() {
            if bucket_count == 0 {
                continue;
            }
            if cumulative + bucket_count >= rank {
                let last = HISTOGRAM_BUCKET_BOUNDS.len() - 1;
                if slot > last {
                    // Overflow bucket: no upper bound to interpolate to.
                    return HISTOGRAM_BUCKET_BOUNDS[last];
                }
                let lo = if slot == 0 { 0.0 } else { HISTOGRAM_BUCKET_BOUNDS[slot - 1] };
                let hi = HISTOGRAM_BUCKET_BOUNDS[slot];
                let within = (rank - cumulative) as f64 / bucket_count as f64;
                return lo + (hi - lo) * within;
            }
            cumulative += bucket_count;
        }
        // Unreachable while count equals the sum of bucket counts; fall
        // back to the largest finite bound rather than panicking.
        HISTOGRAM_BUCKET_BOUNDS[HISTOGRAM_BUCKET_BOUNDS.len() - 1]
    }
}

/// Point-in-time view of the whole metrics registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name (sorted).
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name (sorted).
    pub gauges: Vec<(String, f64)>,
    /// Histograms by name (sorted).
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Spans recorded so far.
    pub spans: u64,
    /// Spans dropped because the event buffer was full.
    pub dropped_spans: u64,
}

struct HistogramCell {
    counts: [AtomicU64; HISTOGRAM_SLOTS],
    count: AtomicU64,
    /// Sum stored as `f64` bits, updated with a CAS loop.
    sum_bits: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    fn observe(&self, value: f64) {
        let slot = HISTOGRAM_BUCKET_BOUNDS
            .iter()
            .position(|&bound| value <= bound)
            .unwrap_or(HISTOGRAM_SLOTS - 1);
        self.counts[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
            counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
        }
    }
}

struct Inner {
    epoch: Instant,
    seq: AtomicU64,
    events: Mutex<Vec<SpanEvent>>,
    max_events: usize,
    dropped: AtomicU64,
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<HistogramCell>>>,
    tids: Mutex<Vec<std::thread::ThreadId>>,
}

/// A thread-safe telemetry recorder.
///
/// Cloning is cheap and shares all state, so one recorder can be handed
/// to worker threads. Most instrumentation goes through the process
/// global (see [`crate::install`]); direct instances are mainly for
/// tests and embedding.
#[derive(Clone)]
pub struct Recorder {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.metrics_snapshot();
        f.debug_struct("Recorder")
            .field("counters", &snap.counters.len())
            .field("gauges", &snap.gauges.len())
            .field("histograms", &snap.histograms.len())
            .field("spans", &snap.spans)
            .finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// Creates an empty recorder with the default span-event cap.
    pub fn new() -> Self {
        Self::with_max_events(DEFAULT_MAX_EVENTS)
    }

    /// Creates an empty recorder that stores at most `max_events` spans;
    /// further spans are dropped (and counted as dropped).
    pub fn with_max_events(max_events: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
                events: Mutex::new(Vec::new()),
                max_events: max_events.max(1),
                dropped: AtomicU64::new(0),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                tids: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Microseconds elapsed since this recorder was created.
    pub fn now_us(&self) -> f64 {
        self.inner.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// A clonable handle to the named counter, registering it on first
    /// use. Handles skip the registry lock on every increment, for hot
    /// paths that add to the same counter many times.
    pub fn counter(&self, name: &str) -> Counter {
        let mut counters = self.inner.counters.lock().unwrap_or_else(PoisonError::into_inner);
        let cell = counters.entry(name.to_string()).or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(cell))
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Sets the named gauge to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut gauges = self.inner.gauges.lock().unwrap_or_else(PoisonError::into_inner);
        let cell = gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        cell.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Records one observation into the named fixed-bucket histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let cell = {
            let mut histograms =
                self.inner.histograms.lock().unwrap_or_else(PoisonError::into_inner);
            Arc::clone(
                histograms.entry(name.to_string()).or_insert_with(|| Arc::new(HistogramCell::new())),
            )
        };
        cell.observe(value);
    }

    /// Opens a wall-clock span; the returned guard records it on drop.
    pub fn span(&self, cat: &'static str, name: &str) -> Span {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        Span {
            state: Some(SpanState {
                recorder: self.clone(),
                cat,
                name: name.to_string(),
                seq,
                start: Instant::now(),
                start_us: self.now_us(),
                args: Vec::new(),
                observe_as: None,
            }),
        }
    }

    /// Records a completed span with explicit timestamps, for bridging
    /// external timelines (e.g. simulated time) into the trace. The
    /// raw span's `tid` selects the lane within its track; its `seq`
    /// field is ignored and replaced with the next logical sequence
    /// number.
    pub fn record_span_at(&self, raw: SpanEvent) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        self.push_event(SpanEvent { seq, ..raw });
    }

    /// The small dense id of the calling thread.
    pub fn current_tid(&self) -> u32 {
        let id = std::thread::current().id();
        let mut tids = self.inner.tids.lock().unwrap_or_else(PoisonError::into_inner);
        match tids.iter().position(|&t| t == id) {
            Some(pos) => pos as u32,
            None => {
                tids.push(id);
                (tids.len() - 1) as u32
            }
        }
    }

    fn push_event(&self, event: SpanEvent) {
        let mut events = self.inner.events.lock().unwrap_or_else(PoisonError::into_inner);
        if events.len() >= self.inner.max_events {
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        } else {
            events.push(event);
        }
    }

    /// The recorded span events, ordered by logical sequence number.
    pub fn span_events(&self) -> Vec<SpanEvent> {
        let mut events = self.inner.events.lock().unwrap_or_else(PoisonError::into_inner).clone();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The recorded span events with sequence number `>= min_seq`, ordered
    /// by sequence number. Unlike [`Self::span_events`] this clones only
    /// the matching tail, so incremental consumers (the live events
    /// stream) can poll cheaply during long runs.
    pub fn span_events_since(&self, min_seq: u64) -> Vec<SpanEvent> {
        let mut events: Vec<SpanEvent> = self
            .inner
            .events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .filter(|e| e.seq >= min_seq)
            .cloned()
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Spans dropped because the event buffer was full.
    pub fn dropped_spans(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// A point-in-time snapshot of every registered metric.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, cell)| (name.clone(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, cell)| (name.clone(), f64::from_bits(cell.load(Ordering::Relaxed))))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, cell)| (name.clone(), cell.snapshot()))
            .collect();
        let spans = self.inner.events.lock().unwrap_or_else(PoisonError::into_inner).len() as u64;
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
            spans,
            dropped_spans: self.dropped_spans(),
        }
    }
}

struct SpanState {
    recorder: Recorder,
    cat: &'static str,
    name: String,
    seq: u64,
    start: Instant,
    start_us: f64,
    args: Vec<(String, ArgValue)>,
    observe_as: Option<String>,
}

/// An open span. Records itself (name, category, sequence number, wall
/// duration, args) into its recorder when dropped. Inert spans — from
/// [`crate::span`] while telemetry is off — cost nothing on drop.
#[must_use = "a span measures the scope it is bound to; bind it to a variable"]
#[derive(Debug)]
pub struct Span {
    state: Option<SpanState>,
}

impl std::fmt::Debug for SpanState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanState").field("cat", &self.cat).field("name", &self.name).finish()
    }
}

impl Span {
    /// A span that records nothing.
    pub fn inert() -> Self {
        Self { state: None }
    }

    /// Whether this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.state.is_some()
    }

    /// Attaches a key/value argument (no-op on inert spans).
    pub fn arg(mut self, key: &str, value: impl Into<ArgValue>) -> Self {
        if let Some(state) = self.state.as_mut() {
            state.args.push((key.to_string(), value.into()));
        }
        self
    }

    /// Additionally records this span's wall duration (microseconds) into
    /// the named histogram when it drops. This is the sanctioned way for
    /// instrumented code to build latency histograms without touching a
    /// clock itself (no-op on inert spans).
    pub fn observe_as(mut self, histogram: &str) -> Self {
        if let Some(state) = self.state.as_mut() {
            state.observe_as = Some(histogram.to_string());
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(state) = self.state.take() else { return };
        let tid = state.recorder.current_tid();
        let dur_us = state.start.elapsed().as_secs_f64() * 1e6;
        if let Some(histogram) = &state.observe_as {
            state.recorder.observe(histogram, dur_us);
        }
        let event = SpanEvent {
            cat: state.cat,
            name: state.name,
            seq: state.seq,
            tid,
            track: Track::Wall,
            ts_us: state.start_us,
            dur_us,
            args: state.args,
        };
        state.recorder.push_event(event);
    }
}

/// A registered counter handle; increments are a single atomic add.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_register_and_accumulate() {
        let r = Recorder::new();
        r.add("a.hits", 2);
        r.add("a.hits", 3);
        let handle = r.counter("a.hits");
        handle.add(5);
        assert_eq!(handle.get(), 10);
        r.gauge_set("depth", 4.5);
        r.gauge_set("depth", 2.0);
        r.observe("lat", 3.0);
        r.observe("lat", 1000.0);
        r.observe("lat", 1e30); // overflow bucket

        let snap = r.metrics_snapshot();
        assert_eq!(snap.counters, vec![("a.hits".to_string(), 10)]);
        assert_eq!(snap.gauges, vec![("depth".to_string(), 2.0)]);
        let (name, hist) = &snap.histograms[0];
        assert_eq!(name, "lat");
        assert_eq!(hist.count, 3);
        assert!((hist.sum - (3.0 + 1000.0 + 1e30)).abs() / 1e30 < 1e-12);
        // 3.0 lands at bound 4 (index 2), 1000.0 at bound 1024 (index 10).
        assert_eq!(hist.counts[2], 1);
        assert_eq!(hist.counts[10], 1);
        assert_eq!(hist.counts[HISTOGRAM_SLOTS - 1], 1);
    }

    #[test]
    fn quantiles_pin_known_distributions() {
        // 1000 observations of exactly 100.0: every quantile lands in
        // bucket (64, 128]. p50 has rank 500 => 64 + 64 * 500/1000 = 96;
        // p99 has rank 990 => 64 + 64 * 990/1000 = 127.36. Both within
        // the documented factor-of-2 band around the true value 100.
        let r = Recorder::new();
        for _ in 0..1000 {
            r.observe("h", 100.0);
        }
        let hist = r.metrics_snapshot().histograms[0].1.clone();
        assert_eq!(hist.quantile(0.5), 96.0);
        assert!((hist.quantile(0.99) - 127.36).abs() < 1e-9);
        assert!(hist.quantile(0.5) <= 2.0 * 100.0 && hist.quantile(0.5) >= 100.0 / 2.0);

        // Uniform 1..=1024: true p50 = 512, true p99 = 1014. The
        // estimate must stay within a factor of 2 of both.
        let r = Recorder::new();
        for v in 1..=1024 {
            r.observe("u", v as f64);
        }
        let hist = r.metrics_snapshot().histograms[0].1.clone();
        let p50 = hist.quantile(0.5);
        let p99 = hist.quantile(0.99);
        assert!((256.0..=1024.0).contains(&p50), "p50 {p50}");
        assert!((507.0..=2028.0).contains(&p99), "p99 {p99}");
        assert!(p50 <= p99, "quantiles must be monotone: {p50} > {p99}");
    }

    #[test]
    fn quantile_edge_cases_and_overflow_bucket() {
        let empty = HistogramSnapshot { count: 0, sum: 0.0, counts: vec![0; HISTOGRAM_SLOTS] };
        assert_eq!(empty.quantile(0.5), 0.0);

        let r = Recorder::new();
        r.observe("h", 3.0); // bucket (2, 4]
        let hist = r.metrics_snapshot().histograms[0].1.clone();
        // A single observation: every quantile interpolates to the
        // bucket's upper bound (rank 1 of 1).
        assert_eq!(hist.quantile(0.0), 4.0);
        assert_eq!(hist.quantile(0.5), 4.0);
        assert_eq!(hist.quantile(1.0), 4.0);
        // Out-of-range q clamps instead of panicking.
        assert_eq!(hist.quantile(-3.0), 4.0);
        assert_eq!(hist.quantile(7.0), 4.0);

        // Observations beyond the last bound land in the overflow
        // bucket; quantiles there degrade to the last finite bound.
        let r = Recorder::new();
        r.observe("h", 1e30);
        r.observe("h", 1e30);
        let hist = r.metrics_snapshot().histograms[0].1.clone();
        let last = HISTOGRAM_BUCKET_BOUNDS[HISTOGRAM_BUCKET_BOUNDS.len() - 1];
        assert_eq!(hist.quantile(0.5), last);
        assert_eq!(hist.quantile(0.99), last);

        // Mixed: one small value and one overflow — the median is the
        // small bucket's interpolation, the p99 hits the overflow cap.
        let r = Recorder::new();
        r.observe("h", 1.0);
        r.observe("h", 1e30);
        let hist = r.metrics_snapshot().histograms[0].1.clone();
        assert_eq!(hist.quantile(0.5), 1.0);
        assert_eq!(hist.quantile(0.99), last);
    }

    #[test]
    fn spans_carry_sequence_numbers_and_durations() {
        let r = Recorder::new();
        {
            let _outer = r.span("search", "outer").arg("candidates", 7u64);
            let _inner = r.span("predictor", "inner");
        }
        let events = r.span_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "outer");
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert!(events.iter().all(|e| e.dur_us >= 0.0));
        assert_eq!(events[0].args, vec![("candidates".to_string(), ArgValue::U64(7))]);
        // Inner drops first but the outer keeps its earlier sequence slot.
        assert_eq!(events[1].name, "inner");
    }

    #[test]
    fn event_cap_drops_and_counts() {
        let r = Recorder::with_max_events(2);
        for i in 0..5 {
            let _s = r.span("t", &format!("s{i}"));
        }
        assert_eq!(r.span_events().len(), 2);
        assert_eq!(r.dropped_spans(), 3);
        assert_eq!(r.metrics_snapshot().dropped_spans, 3);
    }

    #[test]
    fn observe_as_feeds_the_named_histogram_on_drop() {
        let r = Recorder::new();
        {
            let _s = r.span("exec", "event").observe_as("event_latency_us");
        }
        let snap = r.metrics_snapshot();
        let (name, hist) = &snap.histograms[0];
        assert_eq!(name, "event_latency_us");
        assert_eq!(hist.count, 1);
        let events = r.span_events();
        assert_eq!(events.len(), 1);
        // The histogram saw exactly the span's recorded duration.
        assert_eq!(hist.sum, events[0].dur_us);
        // Inert spans ignore the request.
        {
            let _s = Span::inert().observe_as("event_latency_us");
        }
        assert_eq!(r.metrics_snapshot().histograms[0].1.count, 1);
    }

    #[test]
    fn span_events_since_returns_only_the_tail() {
        let r = Recorder::new();
        for i in 0..5 {
            let _s = r.span("t", &format!("s{i}"));
        }
        let tail = r.span_events_since(3);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 3);
        assert_eq!(tail[1].seq, 4);
        assert_eq!(r.span_events_since(0).len(), 5);
        assert!(r.span_events_since(99).is_empty());
    }

    #[test]
    fn inert_spans_record_nothing() {
        let r = Recorder::new();
        {
            let s = Span::inert().arg("k", "v");
            assert!(!s.is_recording());
        }
        assert!(r.span_events().is_empty());
    }

    #[test]
    fn sim_track_spans_keep_explicit_timestamps() {
        let r = Recorder::new();
        r.record_span_at(SpanEvent {
            cat: "sim",
            name: "segment".to_string(),
            seq: 0,
            tid: 3,
            track: Track::Sim,
            ts_us: 125.0,
            dur_us: 500.0,
            args: vec![("runnable".into(), ArgValue::U64(4))],
        });
        let events = r.span_events();
        assert_eq!(events[0].track, Track::Sim);
        assert_eq!(events[0].tid, 3);
        assert_eq!(events[0].ts_us, 125.0);
        assert_eq!(events[0].dur_us, 500.0);
    }

    #[test]
    fn tids_are_dense_and_stable_per_thread() {
        let r = Recorder::new();
        let t0 = r.current_tid();
        assert_eq!(t0, r.current_tid());
        let r2 = r.clone();
        let other = std::thread::spawn(move || r2.current_tid()).join().unwrap();
        assert_ne!(t0, other);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = r.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        r.add("c", 1);
                        r.observe("h", 2.0);
                    }
                });
            }
        });
        let snap = r.metrics_snapshot();
        assert_eq!(snap.counters[0].1, 4000);
        let hist = &snap.histograms[0].1;
        assert_eq!(hist.count, 4000);
        assert!((hist.sum - 8000.0).abs() < 1e-9);
    }
}
