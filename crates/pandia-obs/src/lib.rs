//! Unified telemetry for the Pandia pipeline: spans, a metrics registry,
//! and Chrome-trace export.
//!
//! Pandia's own premise is explaining *where* time goes under contention,
//! and this crate applies that premise to the pipeline itself. It provides
//! a single, dependency-free instrumentation layer shared by the
//! simulator, the predictor, the placement search, and the evaluation
//! harness:
//!
//! * [`Recorder`] — a thread-safe holder of **counters**, **gauges**, and
//!   fixed-bucket **histograms**, plus begin/end **spans** carrying
//!   logical sequence numbers and wall-clock durations.
//! * Sinks — [`Recorder::chrome_trace_json`] renders the recorded spans
//!   and counters as a Chrome trace-event file (openable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)), and
//!   [`Recorder::metrics_jsonl`] / [`Recorder::events_jsonl`] stream the
//!   registry and the raw span events as JSON Lines.
//! * A process-global recorder — [`install`] turns telemetry on;
//!   the free functions [`count`], [`gauge`], [`observe`], and [`span`]
//!   are **no-ops costing one relaxed atomic load** until it is
//!   installed, so instrumented hot paths stay effectively free in
//!   ordinary runs.
//!
//! Telemetry is strictly *off by default* and writes only to its own
//! sinks: enabling it must never change result files, which is asserted
//! end-to-end by the workspace's `tests/telemetry.rs`.
//!
//! # Example
//!
//! ```
//! use pandia_obs::Recorder;
//!
//! let recorder = Recorder::new();
//! {
//!     let _outer = recorder.span("search", "placement_report").arg("candidates", 42u64);
//!     recorder.add("predict.cache.misses", 1);
//!     recorder.observe("predict.eval_us", 180.0);
//! }
//! let trace = recorder.chrome_trace_json();
//! assert!(trace.contains("placement_report"));
//! ```

mod recorder;
pub mod schema;
mod sink;

pub use recorder::{
    ArgValue, Counter, HistogramSnapshot, MetricsSnapshot, Recorder, Span, SpanEvent, Track,
    HISTOGRAM_BUCKET_BOUNDS,
};
pub use schema::{EVENTS_SCHEMA, METRICS_SCHEMA, SNAPSHOT_SCHEMA, TRACE_SCHEMA};
pub use sink::EventsStream;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static GLOBAL: OnceLock<Recorder> = OnceLock::new();
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Installs (or returns) the process-global recorder and enables the
/// free-function instrumentation helpers.
///
/// Idempotent: the first call creates the recorder, later calls return
/// the same instance. There is deliberately no uninstall — a process run
/// either records telemetry or does not.
pub fn install() -> &'static Recorder {
    let recorder = GLOBAL.get_or_init(Recorder::new);
    ENABLED.store(true, Ordering::Release);
    recorder
}

/// Like [`install`], but sizes the span-event buffer for long captures
/// (full sweeps record millions of spans; the default cap of 2^18 would
/// silently truncate them to drops). If the recorder is already
/// installed the existing instance — and its cap — is returned
/// unchanged, so call this before any other telemetry use.
pub fn install_with_max_events(max_events: usize) -> &'static Recorder {
    let recorder = GLOBAL.get_or_init(|| Recorder::with_max_events(max_events));
    ENABLED.store(true, Ordering::Release);
    recorder
}

/// Whether the global recorder is installed. This is the fast gate every
/// instrumentation helper checks first: one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The global recorder, when telemetry has been [`install`]ed.
#[inline]
pub fn global() -> Option<&'static Recorder> {
    if enabled() {
        GLOBAL.get()
    } else {
        None
    }
}

/// Adds `n` to the named global counter (no-op when telemetry is off).
#[inline]
pub fn count(name: &str, n: u64) {
    if let Some(r) = global() {
        r.add(name, n);
    }
}

/// Sets the named global gauge (no-op when telemetry is off).
#[inline]
pub fn gauge(name: &str, value: f64) {
    if let Some(r) = global() {
        r.gauge_set(name, value);
    }
}

/// Records one observation into the named global histogram (no-op when
/// telemetry is off).
#[inline]
pub fn observe(name: &str, value: f64) {
    if let Some(r) = global() {
        r.observe(name, value);
    }
}

/// Opens a span on the global recorder. Returns a guard that records the
/// span on drop; when telemetry is off the guard is inert.
///
/// ```
/// let _span = pandia_obs::span("predictor", "predict");
/// // ... timed work ...
/// ```
#[inline]
pub fn span(cat: &'static str, name: &str) -> Span {
    match global() {
        Some(r) => r.span(cat, name),
        None => Span::inert(),
    }
}
