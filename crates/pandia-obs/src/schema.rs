//! The schema-version registry: every `pandia-*-vN` format tag in the
//! workspace, defined exactly once.
//!
//! Each machine-readable artifact Pandia writes — Chrome traces, metrics
//! and events JSONL streams, daemon event logs, heartbeat snapshots,
//! attribution reports — carries a self-describing schema string so
//! consumers can sniff formats and reject version skew. Those strings
//! are load-bearing: a producer and a parser disagreeing by one
//! character silently severs the pipeline. This module is therefore the
//! single sanctioned home for the literals; everything else must import
//! the constant. pandia-lint rule V1 enforces this mechanically: a
//! `pandia-*-vN` string literal anywhere outside this file is a finding.
//!
//! Bumping a version is a registry edit plus a producer/parser change in
//! the same commit — the constant makes the pairing greppable.

/// Chrome trace-event documents (`--trace-out`), in `otherData.schema`.
pub const TRACE_SCHEMA: &str = "pandia-trace-v1";

/// Metrics JSONL registry dumps (`--metrics-out`), first line.
pub const METRICS_SCHEMA: &str = "pandia-metrics-v1";

/// Span-event JSONL streams (`--events-out`), first line.
pub const EVENTS_SCHEMA: &str = "pandia-events-v1";

/// Periodic metrics-snapshot heartbeat lines (`pandiad
/// --snapshots-out`); every line is self-describing so a stream can be
/// tailed from any point.
pub const SNAPSHOT_SCHEMA: &str = "pandia-metrics-snapshot-v1";

/// Replayable daemon event logs (`pandiad --log-out` / `--replay`),
/// first line.
pub const EVENTLOG_SCHEMA: &str = "pandia-eventlog-v1";

/// Write-ahead journal files (`pandiad --journal`), first line. Each
/// subsequent line pairs an event with its sequence number so a crashed
/// daemon can replay the tail past its last checkpoint.
pub const JOURNAL_SCHEMA: &str = "pandia-journal-v1";

/// Periodic fleet-state checkpoints (`pandiad --checkpoint`), first
/// line. A checkpoint plus the journal tail reconstructs a byte-identical
/// daemon state after a crash.
pub const CHECKPOINT_SCHEMA: &str = "pandia-checkpoint-v1";

/// Offline attribution reports (`pandia_report --json`), top-level
/// `schema` field.
pub const REPORT_SCHEMA: &str = "pandia-report-v1";

#[cfg(test)]
mod tests {
    /// The registry is also the uniqueness authority: two artifacts
    /// sharing a tag would make format sniffing ambiguous.
    #[test]
    fn tags_are_unique_and_versioned() {
        let all = [
            super::TRACE_SCHEMA,
            super::METRICS_SCHEMA,
            super::EVENTS_SCHEMA,
            super::SNAPSHOT_SCHEMA,
            super::EVENTLOG_SCHEMA,
            super::JOURNAL_SCHEMA,
            super::CHECKPOINT_SCHEMA,
            super::REPORT_SCHEMA,
        ];
        for (i, a) in all.iter().enumerate() {
            assert!(a.starts_with("pandia-"), "{a}");
            let (_, version) = a.rsplit_once("-v").expect("versioned tag");
            assert!(version.chars().all(|c| c.is_ascii_digit()), "{a}");
            assert!(!all[i + 1..].contains(a), "duplicate schema tag {a}");
        }
    }
}
