//! Shared fixtures for the Pandia benchmarks.
//!
//! The benches quantify the paper's performance claims:
//!
//! * `predictor` — "Making predictions using Pandia takes a fraction of a
//!   second per placement" (§6.1): per-placement prediction latency over
//!   thread counts from 1 to the full 72-context X5-2, plus the cost of a
//!   full placement-space search.
//! * `pipeline` — the cost of generating machine descriptions (§3) and the
//!   six profiling runs (§4) on the simulator.
//! * `simulator` — ground-truth run latency, which bounds the wall-clock
//!   cost of regenerating the paper's figures.
//! * `placements` — canonical placement enumeration and canonicalization.

pub mod timing;

use pandia_core::{describe_machine, MachineDescription, WorkloadDescription, WorkloadProfiler};
use pandia_sim::SimMachine;
use pandia_topology::MachineSpec;

/// A ready-made X5-2 context: simulator, machine description, and a
/// profiled CG description.
pub fn x5_2_fixture() -> (SimMachine, MachineDescription, WorkloadDescription) {
    let mut machine = SimMachine::new(MachineSpec::x5_2());
    let md = describe_machine(&mut machine).expect("machine description");
    let cg = pandia_workloads::by_name("CG").expect("CG registered");
    let wd = WorkloadProfiler::new(&md)
        .profile(&mut machine, &cg.behavior, cg.name)
        .expect("profiling")
        .description;
    (machine, md, wd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_builds() {
        let (_, md, wd) = x5_2_fixture();
        assert_eq!(md.shape.total_contexts(), 72);
        assert_eq!(wd.name, "CG");
    }
}
