//! A tiny wall-clock benchmark runner.
//!
//! The build environment is offline, so the benches cannot pull in
//! criterion; this module provides the small slice the suite needs:
//! per-case warmup, adaptive iteration counts, and a median/mean report
//! on stdout. Benches stay `harness = false` binaries with a plain
//! `main`, so `cargo bench` runs them unchanged.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock spent measuring each case.
const TARGET: Duration = Duration::from_millis(300);

/// A named group of benchmark cases, printed as `group/case`.
pub struct Group {
    name: String,
}

impl Group {
    /// Starts a group with the given name.
    pub fn new(name: &str) -> Self {
        println!("\n== {name}");
        Self { name: name.to_string() }
    }

    /// Measures one case: runs `f` repeatedly for roughly
    /// [`TARGET`] and reports the per-iteration median and mean.
    pub fn bench<T>(&self, case: &str, mut f: impl FnMut() -> T) -> Duration {
        // Warm up and estimate the per-iteration cost.
        let start = Instant::now();
        black_box(f());
        let estimate = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / estimate.as_nanos()).clamp(1, 10_000) as usize;

        let mut samples = Vec::with_capacity(iters);
        for _ in 0..iters {
            let t = Instant::now();
            black_box(f());
            samples.push(t.elapsed());
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{}/{case}: median {} | mean {} | {iters} iters",
            self.name,
            fmt_duration(median),
            fmt_duration(mean)
        );
        median
    }
}

/// Formats a duration with a unit suited to its magnitude.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns}ns")
    } else if ns < 10_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}
