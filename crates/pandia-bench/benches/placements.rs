//! Placement machinery: enumerating the canonical placement spaces of the
//! evaluation machines and canonicalizing concrete placements.

use std::hint::black_box;

use pandia_bench::timing::Group;
use pandia_topology::{MachineSpec, Placement, PlacementEnumerator};

fn enumeration() {
    let group = Group::new("placement_enumeration");
    let x3 = MachineSpec::x3_2();
    let e3 = PlacementEnumerator::new(&x3);
    group.bench("x3-2_exhaustive_1034", || black_box(e3.all()));
    let x5 = MachineSpec::x5_2();
    let e5 = PlacementEnumerator::new(&x5);
    group.bench("x5-2_count_18144", || black_box(e5.count()));
    group.bench("x5-2_sampled_per_n_42", || black_box(e5.sampled(&x5, 42)));
    let x2 = MachineSpec::x2_4();
    let e2 = PlacementEnumerator::new(&x2);
    group.bench("x2-4_count_864k", || black_box(e2.count()));
}

fn canonicalization() {
    let spec = MachineSpec::x5_2();
    let placement = Placement::packed(&spec, 72).unwrap();
    let group = Group::new("canonicalize");
    group.bench("72_threads", || black_box(placement.canonicalize(&spec)));
}

/// Runs the placement-machinery benches.
fn main() {
    enumeration();
    canonicalization();
}
