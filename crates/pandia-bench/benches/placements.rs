//! Placement machinery: enumerating the canonical placement spaces of the
//! evaluation machines and canonicalizing concrete placements.

// The criterion macros generate an undocumented main function.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pandia_topology::{MachineSpec, Placement, PlacementEnumerator};

fn enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_enumeration");
    group.sample_size(20);
    let x3 = MachineSpec::x3_2();
    group.bench_function("x3-2_exhaustive_1034", |b| {
        let e = PlacementEnumerator::new(&x3);
        b.iter(|| black_box(e.all()))
    });
    let x5 = MachineSpec::x5_2();
    group.bench_function("x5-2_count_18144", |b| {
        let e = PlacementEnumerator::new(&x5);
        b.iter(|| black_box(e.count()))
    });
    group.bench_function("x5-2_sampled_per_n_42", |b| {
        let e = PlacementEnumerator::new(&x5);
        b.iter(|| black_box(e.sampled(&x5, 42)))
    });
    let x2 = MachineSpec::x2_4();
    group.bench_function("x2-4_count_864k", |b| {
        let e = PlacementEnumerator::new(&x2);
        b.iter(|| black_box(e.count()))
    });
    group.finish();
}

fn canonicalization(c: &mut Criterion) {
    let spec = MachineSpec::x5_2();
    let placement = Placement::packed(&spec, 72).unwrap();
    c.bench_function("canonicalize_72_threads", |b| {
        b.iter(|| black_box(placement.canonicalize(&spec)))
    });
}

criterion_group!(benches, enumeration, canonicalization);
criterion_main!(benches);
