//! Telemetry overhead: the cost of instrumentation hooks.
//!
//! The instrumentation layer promises near-zero cost while disabled (one
//! relaxed atomic load per hook) and cheap recording while enabled. This
//! bench measures both states, plus the end-to-end effect on a simulator
//! run — the hottest instrumented path.
//!
//! Ordering matters: the global recorder cannot be uninstalled, so all
//! disabled-state cases run before [`pandia_obs::install`].

use std::hint::black_box;

use pandia_bench::timing::Group;
use pandia_sim::SimMachine;
use pandia_topology::{MachineSpec, Placement, Platform, RunRequest};

fn main() {
    let mut machine = SimMachine::new(MachineSpec::x5_2());
    let cg = pandia_workloads::by_name("CG").expect("CG registered").behavior;
    let placement = Placement::packed(machine.spec(), 8).expect("placement fits");
    let run_once = move |machine: &mut SimMachine| {
        machine
            .run(&RunRequest::new(cg.clone(), placement.clone()))
            .expect("simulated run")
    };

    let off = Group::new("telemetry-off");
    off.bench("count", || pandia_obs::count("bench.counter", 1));
    off.bench("gauge", || pandia_obs::gauge("bench.gauge", 1.0));
    off.bench("observe", || pandia_obs::observe("bench.histogram", 1.0));
    off.bench("span", || pandia_obs::span("bench", "span"));
    let baseline = off.bench("sim-run", || black_box(run_once(&mut machine)));

    pandia_obs::install();

    let on = Group::new("telemetry-on");
    on.bench("count", || pandia_obs::count("bench.counter", 1));
    on.bench("gauge", || pandia_obs::gauge("bench.gauge", 1.0));
    on.bench("observe", || pandia_obs::observe("bench.histogram", 1.0));
    on.bench("span", || pandia_obs::span("bench", "span"));
    let instrumented = on.bench("sim-run", || black_box(run_once(&mut machine)));

    let delta = instrumented.as_secs_f64() - baseline.as_secs_f64();
    println!(
        "\nsim-run median delta with telemetry on: {:+.1}µs ({:+.2}%)",
        delta * 1e6,
        100.0 * delta / baseline.as_secs_f64().max(1e-12)
    );

    let recorder = pandia_obs::global().expect("recorder installed");
    let export = Group::new("telemetry-export");
    export.bench("chrome-trace-json", || black_box(recorder.chrome_trace_json().len()));
    export.bench("metrics-jsonl", || black_box(recorder.metrics_jsonl().len()));
}
