//! Ground-truth simulator throughput: the cost of one measured run, which
//! bounds the wall-clock cost of regenerating the paper's figures
//! (≈ 70 000 runs for the full X5-2 study).

use std::hint::black_box;

use pandia_bench::timing::Group;
use pandia_sim::SimMachine;
use pandia_topology::{MachineSpec, Placement, Platform, RunRequest};

fn run_latency() {
    let mut machine = SimMachine::new(MachineSpec::x5_2());
    let cg = pandia_workloads::by_name("CG").unwrap().behavior;
    let ep = pandia_workloads::by_name("EP").unwrap().behavior;
    let group = Group::new("simulated_run");
    for n in [1usize, 18, 72] {
        let placement = if n <= 36 {
            Placement::spread(machine.spec(), n).unwrap()
        } else {
            Placement::packed(machine.spec(), n).unwrap()
        };
        group.bench(&format!("CG_bandwidth_bound/{n}"), || {
            machine.run(black_box(&RunRequest::new(cg.clone(), placement.clone()))).unwrap()
        });
        group.bench(&format!("EP_compute_bound/{n}"), || {
            machine.run(black_box(&RunRequest::new(ep.clone(), placement.clone()))).unwrap()
        });
    }
}

fn equilibrium_solver() {
    use pandia_sim::equilibrium::{solve, EntityDemand};
    // 72 entities over ~150 resources, each touching 8 — the X5-2 shape.
    let entities: Vec<EntityDemand> = (0..72)
        .map(|i| EntityDemand {
            demands: (0..8).map(|j| ((i * 7 + j * 19) % 150, 1.0 + (j as f64))).collect(),
            max_rate: 1.0,
        })
        .collect();
    let caps: Vec<f64> = (0..150).map(|r| 40.0 + (r % 7) as f64 * 10.0).collect();
    let group = Group::new("equilibrium");
    group.bench("72x150", || solve(black_box(&entities), black_box(&caps)));
}

/// Runs the simulator benches.
fn main() {
    run_latency();
    equilibrium_solver();
}
