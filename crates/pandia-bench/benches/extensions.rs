//! Benchmarks for the §8 extensions: joint prediction, co-schedule
//! search, fleet assignment, and capacity planning.

use std::hint::black_box;

use pandia_bench::timing::Group;
use pandia_bench::x5_2_fixture;
use pandia_core::{
    plan, predict_jobs, scaling_profile, CoScheduler, FleetScheduler, PredictorConfig, Target,
};
use pandia_topology::{HasShape, Placement, PlacementEnumerator, SocketId};

fn joint_prediction() {
    let (_, md, wd) = x5_2_fixture();
    let shape = md.shape();
    let config = PredictorConfig::default();
    let pa = Placement::new(&shape, (0..12).map(|c| shape.ctx(SocketId(0), c, 0)).collect::<Vec<_>>())
        .unwrap();
    let pb = Placement::new(&shape, (0..12).map(|c| shape.ctx(SocketId(1), c, 0)).collect::<Vec<_>>())
        .unwrap();
    let group = Group::new("joint_prediction");
    group.bench("predict_jobs_pair_24_threads", || {
        predict_jobs(black_box(&md), &[(&wd, &pa), (&wd, &pb)], &config).unwrap()
    });
}

fn coschedule_search() {
    let (_, md, wd) = x5_2_fixture();
    let scheduler = CoScheduler::new(&md);
    let group = Group::new("coschedule_search");
    group.bench("two_jobs_x5-2", || scheduler.schedule(black_box(&[&wd, &wd])).unwrap());
}

fn fleet_assignment() {
    let (_, md, wd) = x5_2_fixture();
    let machines = vec![md.clone(), md.clone()];
    let scheduler = FleetScheduler::new(&machines);
    let group = Group::new("fleet_assignment");
    group.bench("four_jobs_two_machines", || {
        scheduler.schedule(black_box(&[&wd, &wd, &wd, &wd])).unwrap()
    });
}

fn capacity_planning() {
    let (_, md, wd) = x5_2_fixture();
    let candidates = PlacementEnumerator::new(&md).sampled(&md.shape(), 8);
    let config = PredictorConfig::default();
    let group = Group::new("capacity_planning");
    group.bench(&format!("plan_over_{}_placements", candidates.len()), || {
        plan(black_box(&md), &wd, &candidates, Target::FractionOfPeak(0.9), &config).unwrap()
    });
    group.bench("scaling_profile", || {
        scaling_profile(black_box(&md), &wd, &candidates, &config).unwrap()
    });
}

/// Runs the §8 extension benches.
fn main() {
    joint_prediction();
    coschedule_search();
    fleet_assignment();
    capacity_planning();
}
