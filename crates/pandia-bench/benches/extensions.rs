//! Benchmarks for the §8 extensions: joint prediction, co-schedule
//! search, fleet assignment, and capacity planning.

// The criterion macros generate an undocumented main function.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pandia_bench::x5_2_fixture;
use pandia_core::{
    plan, predict_jobs, scaling_profile, CoScheduler, FleetScheduler, PredictorConfig, Target,
};
use pandia_topology::{HasShape, Placement, PlacementEnumerator, SocketId};

fn joint_prediction(c: &mut Criterion) {
    let (_, md, wd) = x5_2_fixture();
    let shape = md.shape();
    let config = PredictorConfig::default();
    let pa = Placement::new(
        &shape,
        (0..12).map(|c| shape.ctx(SocketId(0), c, 0)).collect::<Vec<_>>(),
    )
    .unwrap();
    let pb = Placement::new(
        &shape,
        (0..12).map(|c| shape.ctx(SocketId(1), c, 0)).collect::<Vec<_>>(),
    )
    .unwrap();
    c.bench_function("predict_jobs_pair_24_threads", |b| {
        b.iter(|| {
            predict_jobs(black_box(&md), &[(&wd, &pa), (&wd, &pb)], &config).unwrap()
        })
    });
}

fn coschedule_search(c: &mut Criterion) {
    let (_, md, wd) = x5_2_fixture();
    let mut group = c.benchmark_group("coschedule_search");
    group.sample_size(10);
    group.bench_function("two_jobs_x5-2", |b| {
        let scheduler = CoScheduler::new(&md);
        b.iter(|| scheduler.schedule(black_box(&[&wd, &wd])).unwrap())
    });
    group.finish();
}

fn fleet_assignment(c: &mut Criterion) {
    let (_, md, wd) = x5_2_fixture();
    let machines = vec![md.clone(), md.clone()];
    let mut group = c.benchmark_group("fleet_assignment");
    group.sample_size(10);
    group.bench_function("four_jobs_two_machines", |b| {
        let scheduler = FleetScheduler::new(&machines);
        b.iter(|| scheduler.schedule(black_box(&[&wd, &wd, &wd, &wd])).unwrap())
    });
    group.finish();
}

fn capacity_planning(c: &mut Criterion) {
    let (_, md, wd) = x5_2_fixture();
    let candidates = PlacementEnumerator::new(&md).sampled(&md.shape(), 8);
    let config = PredictorConfig::default();
    let mut group = c.benchmark_group("capacity_planning");
    group.sample_size(10);
    group.bench_function(format!("plan_over_{}_placements", candidates.len()), |b| {
        b.iter(|| {
            plan(
                black_box(&md),
                &wd,
                &candidates,
                Target::FractionOfPeak(0.9),
                &config,
            )
            .unwrap()
        })
    });
    group.bench_function("scaling_profile", |b| {
        b.iter(|| scaling_profile(black_box(&md), &wd, &candidates, &config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, joint_prediction, coschedule_search, fleet_assignment, capacity_planning);
criterion_main!(benches);
