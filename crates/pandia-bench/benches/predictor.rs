//! Predictor latency: the §6.1 claim that predictions take "a fraction of
//! a second per placement" (ours should be microseconds), and the cost of
//! searching the whole placement space of the X5-2.

use std::hint::black_box;

use pandia_bench::timing::Group;
use pandia_bench::x5_2_fixture;
use pandia_core::{placement_report, predict, PredictorConfig};
use pandia_topology::{Placement, PlacementEnumerator};

fn per_placement() {
    let (_, md, wd) = x5_2_fixture();
    let config = PredictorConfig::default();
    let group = Group::new("predict_one_placement");
    for n in [1usize, 8, 18, 36, 72] {
        let placement = if n <= 36 {
            Placement::spread(&md.shape, n).unwrap()
        } else {
            Placement::packed(&md.shape, n).unwrap()
        };
        group.bench(&n.to_string(), || {
            predict(black_box(&md), black_box(&wd), &placement, &config).unwrap()
        });
    }
}

fn search_space() {
    let (_, md, wd) = x5_2_fixture();
    let config = PredictorConfig::default();
    // The sampled space matching the paper's coverage density.
    let candidates = PlacementEnumerator::new(&md).sampled(&md.shape, 8);
    let group = Group::new("search_placement_space");
    group.bench(&format!("{}_placements", candidates.len()), || {
        placement_report(black_box(&md), black_box(&wd), &candidates, &config).unwrap()
    });
}

fn iteration_convergence() {
    // Worked-example prediction (saturated interconnect: needs several
    // iterations) vs an uncontended one (converges immediately).
    let machine = {
        let mut m = pandia_core::MachineDescription::toy();
        m.shape =
            pandia_topology::MachineShape { sockets: 2, cores_per_socket: 2, threads_per_core: 2 };
        m
    };
    let saturated = pandia_core::WorkloadDescription::example();
    let mut light = saturated.clone();
    light.demand.dram = vec![5.0, 5.0];
    let placement = Placement::new(
        &machine,
        vec![pandia_topology::CtxId(0), pandia_topology::CtxId(1), pandia_topology::CtxId(4)],
    )
    .unwrap();
    let config = PredictorConfig::default();
    let group = Group::new("predictor_convergence");
    group.bench("saturated_worked_example", || {
        predict(&machine, black_box(&saturated), &placement, &config).unwrap()
    });
    group.bench("uncontended", || {
        predict(&machine, black_box(&light), &placement, &config).unwrap()
    });
}

/// Runs the predictor-latency benches.
fn main() {
    per_placement();
    search_space();
    iteration_convergence();
}
