//! Predictor latency: the §6.1 claim that predictions take "a fraction of
//! a second per placement" (ours should be microseconds), and the cost of
//! searching the whole placement space of the X5-2.

// The criterion macros generate an undocumented main function.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use pandia_bench::x5_2_fixture;
use pandia_core::{placement_report, predict, PredictorConfig};
use pandia_topology::{Placement, PlacementEnumerator};

fn per_placement(c: &mut Criterion) {
    let (_, md, wd) = x5_2_fixture();
    let config = PredictorConfig::default();
    let mut group = c.benchmark_group("predict_one_placement");
    for n in [1usize, 8, 18, 36, 72] {
        let placement = if n <= 36 {
            Placement::spread(&md.shape, n).unwrap()
        } else {
            Placement::packed(&md.shape, n).unwrap()
        };
        group.bench_with_input(BenchmarkId::from_parameter(n), &placement, |b, p| {
            b.iter(|| predict(black_box(&md), black_box(&wd), p, &config).unwrap())
        });
    }
    group.finish();
}

fn search_space(c: &mut Criterion) {
    let (_, md, wd) = x5_2_fixture();
    let config = PredictorConfig::default();
    // The sampled space matching the paper's coverage density.
    let candidates = PlacementEnumerator::new(&md).sampled(&md.shape, 8);
    let mut group = c.benchmark_group("search_placement_space");
    group.sample_size(10);
    group.bench_function(format!("{}_placements", candidates.len()), |b| {
        b.iter(|| placement_report(black_box(&md), black_box(&wd), &candidates, &config).unwrap())
    });
    group.finish();
}

fn iteration_convergence(c: &mut Criterion) {
    // Worked-example prediction (saturated interconnect: needs several
    // iterations) vs an uncontended one (converges immediately).
    let machine = {
        let mut m = pandia_core::MachineDescription::toy();
        m.shape =
            pandia_topology::MachineShape { sockets: 2, cores_per_socket: 2, threads_per_core: 2 };
        m
    };
    let saturated = pandia_core::WorkloadDescription::example();
    let mut light = saturated.clone();
    light.demand.dram = vec![5.0, 5.0];
    let placement =
        Placement::new(&machine, vec![pandia_topology::CtxId(0), pandia_topology::CtxId(1), pandia_topology::CtxId(4)])
            .unwrap();
    let config = PredictorConfig::default();
    let mut group = c.benchmark_group("predictor_convergence");
    group.bench_function("saturated_worked_example", |b| {
        b.iter(|| predict(&machine, black_box(&saturated), &placement, &config).unwrap())
    });
    group.bench_function("uncontended", |b| {
        b.iter(|| predict(&machine, black_box(&light), &placement, &config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, per_placement, search_space, iteration_convergence);
criterion_main!(benches);
