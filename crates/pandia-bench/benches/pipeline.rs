//! Description-generation costs: the machine description (§3, once per
//! machine) and the six-run workload profiling (§4, once per workload).

use std::hint::black_box;

use pandia_bench::timing::Group;
use pandia_core::{describe_machine, ProfileConfig, WorkloadProfiler};
use pandia_sim::SimMachine;
use pandia_topology::MachineSpec;

fn machine_description() {
    let group = Group::new("machine_description");
    for spec in [MachineSpec::x3_2(), MachineSpec::x5_2()] {
        let name = spec.name.clone();
        let mut machine = SimMachine::new(spec.clone());
        group.bench(&name, || describe_machine(black_box(&mut machine)).unwrap());
    }
}

fn workload_profiling() {
    let mut machine = SimMachine::new(MachineSpec::x3_2());
    let md = describe_machine(&mut machine).unwrap();
    let group = Group::new("six_run_profiling");
    for name in ["EP", "CG", "MD"] {
        let entry = pandia_workloads::by_name(name).unwrap();
        group.bench(name, || {
            let profiler = WorkloadProfiler::with_config(
                &md,
                ProfileConfig { repeats: 1, ..ProfileConfig::default() },
            );
            profiler.profile(black_box(&mut machine), &entry.behavior, entry.name).unwrap()
        });
    }
}

/// Runs the description-pipeline benches.
fn main() {
    machine_description();
    workload_profiling();
}
