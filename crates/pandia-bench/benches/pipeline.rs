//! Description-generation costs: the machine description (§3, once per
//! machine) and the six-run workload profiling (§4, once per workload).

// The criterion macros generate an undocumented main function.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use pandia_core::{describe_machine, ProfileConfig, WorkloadProfiler};
use pandia_sim::SimMachine;
use pandia_topology::MachineSpec;

fn machine_description(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_description");
    group.sample_size(20);
    for spec in [MachineSpec::x3_2(), MachineSpec::x5_2()] {
        let name = spec.name.clone();
        group.bench_function(name, |b| {
            let mut machine = SimMachine::new(spec.clone());
            b.iter(|| describe_machine(black_box(&mut machine)).unwrap())
        });
    }
    group.finish();
}

fn workload_profiling(c: &mut Criterion) {
    let mut machine = SimMachine::new(MachineSpec::x3_2());
    let md = describe_machine(&mut machine).unwrap();
    let mut group = c.benchmark_group("six_run_profiling");
    group.sample_size(10);
    for name in ["EP", "CG", "MD"] {
        let entry = pandia_workloads::by_name(name).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let profiler = WorkloadProfiler::with_config(
                    &md,
                    ProfileConfig { repeats: 1, ..ProfileConfig::default() },
                );
                profiler
                    .profile(black_box(&mut machine), &entry.behavior, entry.name)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, machine_description, workload_profiling);
criterion_main!(benches);
