//! Pandia: comprehensive contention-sensitive thread placement.
//!
//! This crate is the facade of the Pandia workspace, a from-scratch Rust
//! reproduction of *“Pandia: comprehensive contention-sensitive thread
//! placement”* (Goodman, Varisteas, Harris — EuroSys 2017). It re-exports
//! the public API of every member crate:
//!
//! * [`topology`] — machine shapes, resources, placements, and the
//!   [`topology::Platform`] abstraction through which Pandia observes a
//!   machine;
//! * [`sim`] — the ground-truth contention simulator standing in for the
//!   paper's Xeon testbed;
//! * [`workloads`] — behavioral specs for the paper's 22 benchmarks;
//! * [`core`] — Pandia itself: the machine description generator (§3), the
//!   six-run workload profiler (§4), and the iterative performance
//!   predictor (§5);
//! * [`daemon`] — `pandiad`, the event-driven placement service over the
//!   incremental fleet scheduler;
//! * [`harness`] — the evaluation harness regenerating every figure and
//!   table of §6;
//! * [`obs`] — the unified telemetry layer (spans, metrics registry,
//!   Chrome-trace export) instrumenting all of the above.
//!
//! # Quickstart
//!
//! ```
//! use pandia::prelude::*;
//!
//! // A simulated two-socket Sandy Bridge machine.
//! let mut machine = SimMachine::new(MachineSpec::x3_2());
//!
//! // Measure the machine with stress kernels (§3)...
//! let description = describe_machine(&mut machine)?;
//!
//! // ...profile a workload with the six runs of §4...
//! let workload = pandia::workloads::by_name("CG").unwrap();
//! let profiler = WorkloadProfiler::new(&description);
//! let profile = profiler.profile(&mut machine, &workload.behavior, workload.name)?;
//!
//! // ...and predict the best placement without running anything else.
//! let candidates = PlacementEnumerator::new(&description).all();
//! let best = best_placement(
//!     &description,
//!     &profile.description,
//!     &candidates,
//!     &PredictorConfig::default(),
//! )?;
//! println!("best predicted placement: {} ({} threads)", best.placement, best.n_threads);
//! # Ok::<(), pandia::core::PandiaError>(())
//! ```

pub use pandia_core as core;
pub use pandia_daemon as daemon;
pub use pandia_harness as harness;
pub use pandia_obs as obs;
pub use pandia_sim as sim;
pub use pandia_topology as topology;
pub use pandia_workloads as workloads;

/// Commonly used items, importable with `use pandia::prelude::*`.
pub mod prelude {
    pub use pandia_core::{
        best_placement, best_placement_with, describe_machine, placement_report,
        placement_report_with, predict, predict_jobs, CacheStats, CoSchedule, CoScheduler,
        ExecContext, FleetAssignment, FleetSchedule, FleetScheduler, FleetStats,
        IncrementalFleet, MachineDescription,
        MachineDescriptionGenerator, Objective, OnlineConfig, OnlineController, OnlineReport,
        PandiaError, PlacementOutcome, PlacementReport, PredictSession, Prediction,
        PredictionCache, PredictorConfig, ProfileConfig, ProfileReport, Recommendation,
        WorkloadDescription, WorkloadProfiler,
    };
    pub use pandia_daemon::{Daemon, DaemonConfig, Event};
    pub use pandia_sim::{Behavior, BurstProfile, Scheduling, SimConfig, SimMachine, UnitDemand};
    pub use pandia_topology::{
        CanonicalPlacement, CtxId, DataPlacement, DemandVector, HasShape, JobRequest,
        MachineShape, MachineSpec, MultiRunRequest, Placement, PlacementClass,
        PlacementEnumerator, Platform, RunRequest, RunResult, StressKind, ThreadId,
    };
    pub use pandia_workloads::{
        all_workloads, by_name, development_set, evaluation_set, paper_suite, WorkloadEntry,
    };
}
